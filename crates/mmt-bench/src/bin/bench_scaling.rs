//! `bench_scaling` — the thread-scaling measurement grid.
//!
//! ```text
//! bench_scaling [--smoke] [--threads LIST] [--out PATH] [--check PATH] [--diff BASE CUR]
//! ```
//!
//! * default: sweep 1/2/4/… up to the host's logical cores across the
//!   parallel engines (honours `MMT_SCALE` / `MMT_RUNS`) and write
//!   `BENCH_scaling.json`;
//! * `--smoke`: the CI shape — tiny scale, same sweep, same artifact
//!   format;
//! * `--threads LIST`: force the sweep (comma-separated, e.g. `1,2`) —
//!   what CI uses so the artifact shape is host-independent; `--threads
//!   auto` spells the default sweep explicitly (powers of two up to the
//!   host's logical cores);
//! * `--check PATH`: don't run anything — validate an existing artifact
//!   against the checked-in schema;
//! * `--diff BASE CUR`: compare two artifacts' relaxations/sec per
//!   `(workload, engine@threads/pin)` cell, failing on a collapse beyond
//!   the tolerance in a single-thread *unpinned* cell. Speedups and
//!   pinned cells are recorded, never gated — a 1-core host measures
//!   overhead, not scaling, and pinning is advisory.
//!
//! The pin sweep itself is fixed (unpinned + compact-pinned); `MMT_PIN`
//! still selects the policy the rest of the process runs under and is
//! recorded in the `pin_policy` header field.

use mmt_bench::scaling::{self, ScalingOptions};
use std::process::ExitCode;

const DIFF_TOLERANCE: f64 = 2.0;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_scaling.json");
    let mut check: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut threads: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--threads" => match args.next().map(|list| parse_threads(&list)) {
                Some(Ok(list)) => threads = Some(list),
                Some(Err(e)) => return usage(&e),
                None => return usage("--threads needs a comma-separated list"),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--diff" => match (args.next(), args.next()) {
                (Some(base), Some(cur)) => diff = Some((base, cur)),
                _ => return usage("--diff needs a baseline path and a current path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_scaling [--smoke] [--threads LIST] [--out PATH] \
                     [--check PATH] [--diff BASE CUR]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some((base_path, cur_path)) = diff {
        return run_diff(&base_path, &cur_path);
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_scaling: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match scaling::check_artifact(&text) {
            Ok(_) => {
                println!("{path}: valid BENCH_scaling artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_scaling: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut opts = if smoke {
        ScalingOptions::smoke()
    } else {
        ScalingOptions::full()
    };
    if let Some(list) = threads {
        opts = opts.with_threads(list);
    }
    eprintln!(
        "bench_scaling: scale 2^{}, {} iterations x {} sources, threads {:?}",
        opts.scale, opts.iterations, opts.sources, opts.threads
    );
    let report = scaling::run(&opts);
    let text = report.to_json();
    if let Err(e) = scaling::check_artifact(&text) {
        eprintln!("bench_scaling: emitted artifact failed self-check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("bench_scaling: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for w in &report.workloads {
        eprintln!(
            "  {} (n={}, m={}, delta {}, rho {})",
            w.name, w.n, w.m, w.delta, w.rho
        );
        for s in &w.grid {
            eprintln!(
                "    {:<15} @{:<3} pin={:<8} {:>10.4}s  {:>12.0} relax/s  {:>6.2}x vs base",
                s.engine,
                s.threads,
                s.pin.label(),
                s.wall_secs,
                s.relaxations_per_sec(),
                w.speedup_vs_base(s)
            );
        }
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn parse_threads(list: &str) -> Result<Vec<usize>, String> {
    if list.trim().eq_ignore_ascii_case("auto") {
        // The default sweep, spelled explicitly: powers of two up to the
        // host's logical cores (always ending at the core count itself).
        return Ok(mmt_platform::pool::sweep_points(
            mmt_platform::available_threads(),
        ));
    }
    list.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| format!("--threads: {t:?} is not a thread count"))
                .and_then(|t| {
                    if t == 0 {
                        Err("--threads: 0 is not a thread count".into())
                    } else {
                        Ok(t)
                    }
                })
        })
        .collect()
}

fn run_diff(base_path: &str, cur_path: &str) -> ExitCode {
    let read_checked = |path: &str| {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        scaling::check_artifact(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, cur) = match (read_checked(base_path), read_checked(cur_path)) {
        (Ok(base), Ok(cur)) => (base, cur),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_scaling: {e}");
            return ExitCode::FAILURE;
        }
    };
    match scaling::diff_artifacts(&base, &cur, DIFF_TOLERANCE) {
        Ok(lines) => {
            for l in &lines {
                eprintln!(
                    "  {:<22} {:<18} {:>12.0} -> {:>12.0} relax/s ({:.2}x)",
                    l.workload,
                    l.engine,
                    l.baseline,
                    l.current,
                    l.ratio()
                );
            }
            println!(
                "{} cells compared against {base_path}; single-thread unpinned cells within {DIFF_TOLERANCE}x",
                lines.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_scaling: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_scaling: {msg}");
    eprintln!(
        "usage: bench_scaling [--smoke] [--threads LIST|auto] [--out PATH] [--check PATH] \
         [--diff BASE CUR]"
    );
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::parse_threads;

    #[test]
    fn auto_expands_to_the_power_of_two_sweep() {
        let sweep = parse_threads("auto").unwrap();
        assert_eq!(
            sweep,
            mmt_platform::pool::sweep_points(mmt_platform::available_threads())
        );
        assert_eq!(sweep[0], 1);
        assert_eq!(*sweep.last().unwrap(), mmt_platform::available_threads());
        assert_eq!(parse_threads(" AUTO ").unwrap(), sweep);
    }

    #[test]
    fn lists_still_parse_and_zero_is_rejected() {
        assert_eq!(parse_threads("2, 1").unwrap(), vec![2, 1]);
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("two").is_err());
    }
}
