//! `bench_layout` — the locality-layout measurement grid.
//!
//! ```text
//! bench_layout [--smoke] [--out PATH] [--check PATH]
//! ```
//!
//! * default: run the full grid (honours `MMT_SCALE` / `MMT_RUNS`) and
//!   write `BENCH_layout.json`;
//! * `--smoke`: the CI shape — tiny scale, every ordering and width still
//!   exercised, same artifact format;
//! * `--check PATH`: don't run anything — parse an existing artifact and
//!   validate it against the checked-in schema, exiting non-zero on any
//!   violation.

use mmt_bench::layout::{self, LayoutOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_layout.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: bench_layout [--smoke] [--out PATH] [--check PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_layout: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match layout::check_artifact(&text) {
            Ok(_) => {
                println!("{path}: valid BENCH_layout artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_layout: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = if smoke {
        LayoutOptions::smoke()
    } else {
        LayoutOptions::full()
    };
    eprintln!(
        "bench_layout: scale 2^{}, {} iterations x {} sources",
        opts.scale, opts.iterations, opts.sources
    );
    let report = layout::run(opts);
    let text = report.to_json();
    if let Err(e) = layout::check_artifact(&text) {
        eprintln!("bench_layout: emitted artifact failed self-check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("bench_layout: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for w in &report.workloads {
        eprintln!(
            "  {} (n={}, m={}, delta {}, compact {})",
            w.name,
            w.n,
            w.m,
            w.delta,
            if w.compact_ok { "ok" } else { "refused" }
        );
        for s in &w.samples {
            eprintln!(
                "    {:<10} {:<8} {:>10.4}s  {:>12.0} relax/s  (+{:.4}s permute)",
                s.engine,
                s.layout,
                s.wall_secs,
                s.relaxations_per_sec(),
                s.permute_secs
            );
        }
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_layout: {msg}");
    eprintln!("usage: bench_layout [--smoke] [--out PATH] [--check PATH]");
    ExitCode::FAILURE
}
