//! `bench_road` — full-SSSP vs point-to-point on road-family graphs.
//!
//! ```text
//! bench_road [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]
//! ```
//!
//! * default: run the road workloads through the full-SSSP and P2P
//!   engines (honours `MMT_SCALE` / `MMT_RUNS`) and write
//!   `BENCH_road.json`;
//! * `--smoke`: the CI shape — tiny grids, same artifact format;
//! * `--check PATH`: don't run anything — validate an existing artifact
//!   against the checked-in schema *and* the P2P invariant (every p2p
//!   row scanned strictly fewer arcs than every full row);
//! * `--diff BASE CUR`: compare two artifacts' relaxations/sec per
//!   `(workload, engine)` row, failing on a collapse beyond the
//!   tolerance. Every row gates: all rows are single-threaded by
//!   construction, so there is no oversubscription excuse.

use mmt_bench::road::{self, RoadOptions};
use std::process::ExitCode;

const DIFF_TOLERANCE: f64 = 2.0;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_road.json");
    let mut check: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--diff" => match (args.next(), args.next()) {
                (Some(base), Some(cur)) => diff = Some((base, cur)),
                _ => return usage("--diff needs a baseline path and a current path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_road [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some((base_path, cur_path)) = diff {
        return run_diff(&base_path, &cur_path);
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_road: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match road::check_artifact(&text) {
            Ok(_) => {
                println!("{path}: valid BENCH_road artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_road: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = if smoke {
        RoadOptions::smoke()
    } else {
        RoadOptions::full()
    };
    eprintln!(
        "bench_road: scale 2^{}, {} iterations x {} queries",
        opts.scale, opts.iterations, opts.queries
    );
    let report = road::run(&opts);
    let text = report.to_json();
    if let Err(e) = road::check_artifact(&text) {
        eprintln!("bench_road: emitted artifact failed self-check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("bench_road: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for w in &report.workloads {
        eprintln!("  {} (n={}, m={}, delta {})", w.name, w.n, w.m, w.delta);
        for r in &w.rows {
            eprintln!(
                "    {:<16} {:<4} {:>10.4}s  {:>12.0} relax/s  {:>12} arcs",
                r.engine,
                r.kind,
                r.wall_secs,
                r.relaxations_per_sec(),
                r.arcs_scanned
            );
        }
        for p in &w.delta_sweep {
            eprintln!(
                "    delta={:<10} {:>10.4}s  {:>12} relaxations",
                p.delta, p.wall_secs, p.relaxations
            );
        }
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn run_diff(base_path: &str, cur_path: &str) -> ExitCode {
    let read_checked = |path: &str| {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        road::check_artifact(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, cur) = match (read_checked(base_path), read_checked(cur_path)) {
        (Ok(base), Ok(cur)) => (base, cur),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_road: {e}");
            return ExitCode::FAILURE;
        }
    };
    match road::diff_artifacts(&base, &cur, DIFF_TOLERANCE) {
        Ok(lines) => {
            for l in &lines {
                eprintln!(
                    "  {:<22} {:<16} {:>12.0} -> {:>12.0} relax/s ({:.2}x)",
                    l.workload,
                    l.engine,
                    l.baseline,
                    l.current,
                    l.ratio()
                );
            }
            println!(
                "{} rows compared against {base_path}; all within {DIFF_TOLERANCE}x",
                lines.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_road: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_road: {msg}");
    eprintln!("usage: bench_road [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]");
    ExitCode::FAILURE
}
