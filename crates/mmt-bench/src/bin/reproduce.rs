//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! reproduce [table1|table2|table3|table4|table5|table6|fig4|fig5|all]...
//! ```
//!
//! Scale is controlled by `MMT_SCALE` (log2 of the base vertex count,
//! default 16 here), run averaging by `MMT_RUNS` (default 10, like the
//! paper). Output is markdown-ish text with the paper's reported values
//! printed next to ours where the source text preserves them.

use mmt_baselines::{delta_stepping, goldberg_sssp, DeltaConfig};
use mmt_bench::{paper_families, runs_from_env, scale_from_env, RunRecord, Workload};
use mmt_ch::{build_parallel, build_serial, ChMode, ChStats};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_platform::pool::sweep_points;
use mmt_platform::timing::fmt_seconds;
use mmt_platform::{available_threads, with_pool, RunStats, Table};
use mmt_thorup::{
    BatchMode, QueryEngine, ThorupConfig, ThorupInstance, ThorupSolver, ToVisitStrategy,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sections: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "fig4", "fig5",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let scale = scale_from_env(16);
    let runs = runs_from_env();
    let threads = available_threads();
    println!("# Reproduction run");
    println!("host: {threads} hardware thread(s); base scale 2^{scale}; {runs} runs per timing\n");
    let mut record = RunRecord::new();
    for section in sections {
        match section {
            "table1" => table1(scale, runs),
            "table2" => table2(scale),
            "table3" => table3(scale, threads),
            "table4" => table4(scale, runs, threads),
            "table5" => table5(scale, runs, threads, &mut record),
            "table6" => table6(scale, runs, threads, &mut record),
            "fig4" => fig4(scale, runs, threads),
            "fig5" => fig5(scale, threads, &mut record),
            other => eprintln!("unknown section `{other}` (skipped)"),
        }
    }
    // Machine-readable artifact for run-over-run comparison
    // (`mmt_bench::results::RunRecord::compare`).
    if let Some(path) = std::env::var_os("MMT_CSV") {
        match std::fs::File::create(&path) {
            Ok(f) => {
                if record.write_csv(std::io::BufWriter::new(f)).is_ok() {
                    println!(
                        "(wrote {} measurements to {})",
                        record.len(),
                        path.to_string_lossy()
                    );
                }
            }
            Err(e) => eprintln!("cannot write {}: {e}", path.to_string_lossy()),
        }
    }
}

/// Average seconds for `runs` runs of `f`.
fn avg(runs: usize, mut f: impl FnMut()) -> f64 {
    RunStats::measure(runs, &mut f).mean()
}

/// Table 1: serial Thorup vs the DIMACS reference solver (multilevel
/// buckets), plus the serial CH preprocessing time.
fn table1(scale: u32, runs: usize) {
    let mut t = Table::new(
        "Table 1 — Thorup sequential performance vs DIMACS reference solver",
        &[
            "Family",
            "Thorup",
            "DIMACS ref",
            "CH preproc",
            "ratio",
            "paper ratio",
        ],
    );
    for log_n in [scale, scale + 1] {
        let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, log_n);
        let w = Workload::generate(spec);
        let (ch, ch_secs) = RunStats::time_once(|| build_serial(&w.edges, ChMode::Collapsed));
        let mut engine = mmt_thorup::SerialThorup::new(&w.graph, &ch);
        let src = w.source();
        let thorup = avg(runs, || {
            std::hint::black_box(engine.solve(src));
        });
        let dimacs = avg(runs, || {
            std::hint::black_box(goldberg_sssp(&w.graph, src));
        });
        t.row(&[
            spec.name(),
            fmt_seconds(thorup),
            fmt_seconds(dimacs),
            fmt_seconds(ch_secs),
            format!("{:.2}x", thorup / dimacs),
            "2-4x (paper's claim)".into(),
        ]);
    }
    println!("{t}");
}

/// Table 2: Component Hierarchy statistics per family.
fn table2(scale: u32) {
    let mut t = Table::new(
        "Table 2 — CH statistics (faithful mode = paper's Algorithm 1 counts)",
        &[
            "Family",
            "paper family",
            "Comp",
            "Comp(collapsed)",
            "Children",
            "Instance",
            "Graph+CH",
        ],
    );
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let faithful = ChStats::of(&build_serial(&w.edges, ChMode::Faithful));
        let collapsed_ch = build_serial(&w.edges, ChMode::Collapsed);
        let collapsed = ChStats::of(&collapsed_ch);
        t.row(&[
            fam.spec.name(),
            fam.paper_name.into(),
            format!("{}", faithful.components),
            format!("{}", collapsed.components),
            format!("{:.2}", faithful.avg_children),
            mmt_platform::mem::fmt_bytes(collapsed.instance_bytes),
            mmt_platform::mem::fmt_bytes(w.graph.heap_bytes() + collapsed.hierarchy_bytes),
        ]);
    }
    println!("{t}");
}

/// Table 3: parallel CH construction time and speedup (1 thread -> max).
fn table3(scale: u32, threads: usize) {
    let mut t = Table::new(
        format!("Table 3 — CH construction on {threads} thread(s)"),
        &["Family", "CH", "speedup vs p=1", "paper CH (40 proc)"],
    );
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let t1 = with_pool(1, || {
            RunStats::time_once(|| std::hint::black_box(build_parallel(&w.edges))).1
        });
        let tp = with_pool(threads, || {
            RunStats::time_once(|| std::hint::black_box(build_parallel(&w.edges))).1
        });
        t.row(&[
            fam.spec.name(),
            fmt_seconds(tp),
            format!("{:.2}x", t1 / tp),
            fmt_seconds(fam.paper_ch),
        ]);
    }
    println!("{t}");
}

/// Table 4: Thorup's algorithm on the full pool, with speedup vs 1 thread.
fn table4(scale: u32, runs: usize, threads: usize) {
    let mut t = Table::new(
        format!("Table 4 — Thorup's algorithm on {threads} thread(s)"),
        &[
            "Family",
            "Thorup",
            "speedup vs p=1",
            "paper Thorup (40 proc)",
        ],
    );
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let src = w.source();
        let inst = ThorupInstance::new(&ch);
        let time_at = |p: usize| {
            with_pool(p, || {
                avg(runs, || {
                    inst.reset(&ch);
                    solver.solve_into(&inst, src);
                })
            })
        };
        let t1 = time_at(1);
        let tp = time_at(threads);
        t.row(&[
            fam.spec.name(),
            fmt_seconds(tp),
            format!("{:.2}x", t1 / tp),
            fmt_seconds(fam.paper_thorup),
        ]);
    }
    println!("{t}");
}

/// Table 5: Δ-stepping vs Thorup vs CH construction.
fn table5(scale: u32, runs: usize, threads: usize, record: &mut RunRecord) {
    let mut t = Table::new(
        format!("Table 5 — Δ-stepping vs Thorup on {threads} thread(s)"),
        &[
            "Family",
            "Δ-stepping",
            "Thorup",
            "CH",
            "paper Δ~",
            "paper Thorup",
            "paper CH",
        ],
    );
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let src = w.source();
        let (ch, delta_secs, thorup_secs) = with_pool(threads, || {
            let (ch, ch_build) = RunStats::time_once(|| build_parallel(&w.edges));
            let cfg = DeltaConfig::auto(&w.graph);
            let d = avg(runs, || {
                std::hint::black_box(delta_stepping(&w.graph, src, cfg));
            });
            let solver = ThorupSolver::new(&w.graph, &ch);
            let inst = ThorupInstance::new(&ch);
            let th = avg(runs, || {
                inst.reset(&ch);
                solver.solve_into(&inst, src);
            });
            ((ch, ch_build), d, th)
        });
        record.record("table5", &fam.spec.name(), "delta_secs", delta_secs);
        record.record("table5", &fam.spec.name(), "thorup_secs", thorup_secs);
        record.record("table5", &fam.spec.name(), "ch_secs", ch.1);
        t.row(&[
            fam.spec.name(),
            fmt_seconds(delta_secs),
            fmt_seconds(thorup_secs),
            fmt_seconds(ch.1),
            fmt_seconds(fam.paper_delta),
            fmt_seconds(fam.paper_thorup),
            fmt_seconds(fam.paper_ch),
        ]);
    }
    println!("{t}");
}

/// Table 6: naive toVisit (Thorup A) vs selective (Thorup B).
fn table6(scale: u32, runs: usize, threads: usize, record: &mut RunRecord) {
    let mut t = Table::new(
        "Table 6 — toVisit strategy: naive (A) vs selective (B)",
        &[
            "Family",
            "Thorup A",
            "Thorup B",
            "B speedup",
            "paper A~",
            "paper B",
        ],
    );
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let ch = build_parallel(&w.edges);
        let src = w.source();
        let inst = ThorupInstance::new(&ch);
        let time_with = |strategy: ToVisitStrategy| {
            let solver = ThorupSolver::new(&w.graph, &ch)
                .with_config(ThorupConfig::new().with_strategy(strategy));
            with_pool(threads, || {
                avg(runs, || {
                    inst.reset(&ch);
                    solver.solve_into(&inst, src);
                })
            })
        };
        let naive = time_with(ToVisitStrategy::AlwaysParallel);
        let selective = time_with(ToVisitStrategy::selective_default());
        record.record("table6", &fam.spec.name(), "thorup_a_secs", naive);
        record.record("table6", &fam.spec.name(), "thorup_b_secs", selective);
        t.row(&[
            fam.spec.name(),
            fmt_seconds(naive),
            fmt_seconds(selective),
            format!("{:.2}x", naive / selective),
            fmt_seconds(fam.paper_thorup_naive),
            fmt_seconds(fam.paper_thorup),
        ]);
    }
    println!("{t}");
}

/// Figure 4: scaling of CH construction and Thorup with thread count.
fn fig4(scale: u32, runs: usize, threads: usize) {
    let points = sweep_points(threads.max(2) * 2); // oversubscribe past core count
    let fams = paper_families(scale);
    let mut ch_table = Table::new(
        "Figure 4 (top) — CH construction seconds vs emulated processors",
        &header_with_points(&points),
    );
    let mut th_table = Table::new(
        "Figure 4 (bottom) — Thorup seconds vs emulated processors",
        &header_with_points(&points),
    );
    let mut ch_series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut th_series: Vec<(String, Vec<f64>)> = Vec::new();
    for fam in &fams {
        let w = Workload::generate(fam.spec);
        let mut ch_row = vec![fam.spec.name()];
        let mut ch_secs = Vec::new();
        for &p in &points {
            let secs = with_pool(p, || {
                RunStats::time_once(|| std::hint::black_box(build_parallel(&w.edges))).1
            });
            ch_row.push(fmt_seconds(secs));
            ch_secs.push(secs);
        }
        ch_table.row(&ch_row);
        ch_series.push((fam.spec.name(), ch_secs));
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let src = w.source();
        let inst = ThorupInstance::new(&ch);
        let mut th_row = vec![fam.spec.name()];
        let mut th_secs = Vec::new();
        for &p in &points {
            let secs = with_pool(p, || {
                avg(runs.min(3), || {
                    inst.reset(&ch);
                    solver.solve_into(&inst, src);
                })
            });
            th_row.push(fmt_seconds(secs));
            th_secs.push(secs);
        }
        th_table.row(&th_row);
        th_series.push((fam.spec.name(), th_secs));
    }
    println!("{ch_table}");
    println!("{th_table}");
    let xs: Vec<f64> = points.iter().map(|&p| p as f64).collect();
    write_dat("fig4_ch_construction", "processors", &xs, &ch_series);
    write_dat("fig4_thorup", "processors", &xs, &th_series);
}

fn header_with_points(points: &[usize]) -> Vec<&'static str> {
    // Table headers borrow &str; leak tiny strings once per run.
    let mut h = vec!["Family"];
    for &p in points {
        h.push(Box::leak(format!("p={p}").into_boxed_str()));
    }
    h
}

/// When `MMT_DAT_DIR` is set, writes a gnuplot-ready data file: one `x`
/// column followed by one column per named series, plus a matching `.gp`
/// script (log-log, like the paper's Figures 4–5).
fn write_dat(name: &str, xlabel: &str, xs: &[f64], series: &[(String, Vec<f64>)]) {
    let Some(dir) = std::env::var_os("MMT_DAT_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let mut dat = String::new();
    dat.push_str(&format!(
        "# {name}: {xlabel} then {}\n",
        series
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (i, &x) in xs.iter().enumerate() {
        dat.push_str(&format!("{x}"));
        for (_, ys) in series {
            dat.push_str(&format!(" {}", ys.get(i).copied().unwrap_or(f64::NAN)));
        }
        dat.push('\n');
    }
    let mut gp = format!(
        "set logscale xy\nset xlabel \"{xlabel}\"\nset ylabel \"seconds\"\nset key outside\nplot "
    );
    let plots: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (n, _))| {
            format!(
                "\"{name}.dat\" using 1:{} with linespoints title \"{n}\"",
                i + 2
            )
        })
        .collect();
    gp.push_str(&plots.join(", \\\n     "));
    gp.push('\n');
    let _ = std::fs::write(dir.join(format!("{name}.dat")), dat);
    let _ = std::fs::write(dir.join(format!("{name}.gp")), gp);
    println!("(wrote {name}.dat/.gp to {})", dir.display());
}

/// Figure 5: k simultaneous shared-CH Thorup queries vs k sequential
/// Δ-stepping runs vs k sequential Thorup runs, at two graph sizes.
fn fig5(scale: u32, threads: usize, record: &mut RunRecord) {
    for log_n in [scale.saturating_sub(2), scale + 1] {
        let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, log_n);
        let w = Workload::generate(spec);
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let engine = QueryEngine::new(solver);
        let cfg = DeltaConfig::auto(&w.graph);
        let mut t = Table::new(
            format!(
                "Figure 5 — simultaneous Thorup vs sequential baselines, {}",
                spec.name()
            ),
            &[
                "sources",
                "simul Thorup",
                "seq Thorup",
                "seq Δ-stepping",
                "simul/Δ ratio",
                "instances mem",
                "graph copies mem",
            ],
        );
        let ks = [1usize, 2, 4, 8, 16, 32];
        let mut simul_s = Vec::new();
        let mut seq_th_s = Vec::new();
        let mut seq_ds_s = Vec::new();
        for k in ks {
            let sources = w.sources(k);
            let (simul, seq_th, seq_ds) = with_pool(threads, || {
                let simul = RunStats::time_once(|| {
                    std::hint::black_box(engine.solve_batch(&sources, BatchMode::Simultaneous));
                })
                .1;
                let seq_th = RunStats::time_once(|| {
                    std::hint::black_box(engine.solve_batch(&sources, BatchMode::Sequential));
                })
                .1;
                let seq_ds = RunStats::time_once(|| {
                    for &s in &sources {
                        std::hint::black_box(delta_stepping(&w.graph, s, cfg));
                    }
                })
                .1;
                (simul, seq_th, seq_ds)
            });
            t.row(&[
                k.to_string(),
                fmt_seconds(simul),
                fmt_seconds(seq_th),
                fmt_seconds(seq_ds),
                format!("{:.2}x", seq_ds / simul),
                // The paper's §5.2 memory argument: k shared-CH instances
                // vs k per-process graph copies. This holds regardless of
                // core count.
                mmt_platform::mem::fmt_bytes(engine.batch_instance_bytes(k)),
                mmt_platform::mem::fmt_bytes(k * w.graph.heap_bytes()),
            ]);
            record.record("fig5", &spec.name(), &format!("simul_thorup_k{k}"), simul);
            record.record("fig5", &spec.name(), &format!("seq_thorup_k{k}"), seq_th);
            record.record("fig5", &spec.name(), &format!("seq_delta_k{k}"), seq_ds);
            simul_s.push(simul);
            seq_th_s.push(seq_th);
            seq_ds_s.push(seq_ds);
        }
        println!("{t}");
        write_dat(
            &format!("fig5_{}", spec.name().replace('^', "")),
            "sources",
            &ks.map(|k| k as f64),
            &[
                ("simul-thorup".to_string(), simul_s),
                ("baseline-thorup".to_string(), seq_th_s),
                ("baseline-deltastep".to_string(), seq_ds_s),
            ],
        );
    }
}
