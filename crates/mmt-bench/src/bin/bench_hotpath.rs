//! `bench_hotpath` — the reproducible hot-path baseline.
//!
//! ```text
//! bench_hotpath [--smoke] [--out PATH] [--check PATH]
//! ```
//!
//! * default: run the full grid (honours `MMT_SCALE` / `MMT_RUNS`) and
//!   write `BENCH_hotpath.json`;
//! * `--smoke`: the CI shape — tiny scale, two iterations, same artifact;
//! * `--out PATH`: write the artifact somewhere else;
//! * `--check PATH`: don't run anything — parse an existing artifact and
//!   validate it against the checked-in schema, exiting non-zero on any
//!   violation.
//!
//! Build with `--features count-alloc` to populate the per-query
//! allocation columns (otherwise they are reported as zero and
//! `alloc_counting` is `false`).

use mmt_bench::hotpath::{self, HotpathOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_hotpath.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: bench_hotpath [--smoke] [--out PATH] [--check PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_hotpath: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match hotpath::check_artifact(&text) {
            Ok(_) => {
                println!("{path}: valid BENCH_hotpath artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_hotpath: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = if smoke {
        HotpathOptions::smoke()
    } else {
        HotpathOptions::full()
    };
    eprintln!(
        "bench_hotpath: scale 2^{}, {} iterations x {} sources, alloc counting {}",
        opts.scale,
        opts.iterations,
        opts.sources,
        if hotpath::alloc_counting_enabled() {
            "on"
        } else {
            "off (build with --features count-alloc)"
        }
    );
    let report = hotpath::run(opts);
    let text = report.to_json();
    if let Err(e) = hotpath::check_artifact(&text) {
        // The emitter and the schema live in the same crate; disagreement
        // is a bug worth failing loudly on before the artifact lands.
        eprintln!("bench_hotpath: emitted artifact failed self-check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("bench_hotpath: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for w in &report.workloads {
        eprintln!(
            "  {} (n={}, m={}, adaptive delta {} vs default {})",
            w.name, w.n, w.m, w.adaptive_delta, w.default_delta
        );
        for e in &w.engines {
            eprintln!(
                "    {:<16} {:>10.4}s  {:>12.0} relax/s  {:>10.1} allocs/query",
                e.name,
                e.wall_secs,
                e.relaxations_per_sec(),
                e.allocs_per_query
            );
        }
    }
    println!("{out}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_hotpath: {msg}");
    eprintln!("usage: bench_hotpath [--smoke] [--out PATH] [--check PATH]");
    ExitCode::FAILURE
}
