//! `bench_hotpath` — the reproducible hot-path baseline.
//!
//! ```text
//! bench_hotpath [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]
//! ```
//!
//! * default: run the full grid (honours `MMT_SCALE` / `MMT_RUNS`) and
//!   write `BENCH_hotpath.json`;
//! * `--smoke`: the CI shape — tiny scale, two iterations, same artifact;
//! * `--out PATH`: write the artifact somewhere else;
//! * `--check PATH`: don't run anything — parse an existing artifact and
//!   validate it against the checked-in schema, exiting non-zero on any
//!   violation;
//! * `--diff BASE CUR`: compare two artifacts' relaxations/sec per
//!   `(workload, engine)` pair, exiting non-zero when the current run is
//!   more than 2x slower than the baseline anywhere (or when the
//!   artifacts share no pairs). This is the CI throughput gate against
//!   the checked-in `BENCH_hotpath.json`.
//!
//! Build with `--features count-alloc` to populate the per-query
//! allocation columns (otherwise they are reported as zero and
//! `alloc_counting` is `false`).

use mmt_bench::hotpath::{self, HotpathOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_hotpath.json");
    let mut check: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--diff" => match (args.next(), args.next()) {
                (Some(base), Some(cur)) => diff = Some((base, cur)),
                _ => return usage("--diff needs a baseline path and a current path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_hotpath [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some((base_path, cur_path)) = diff {
        return run_diff(&base_path, &cur_path);
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_hotpath: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match hotpath::check_artifact(&text) {
            Ok(_) => {
                println!("{path}: valid BENCH_hotpath artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_hotpath: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = if smoke {
        HotpathOptions::smoke()
    } else {
        HotpathOptions::full()
    };
    eprintln!(
        "bench_hotpath: scale 2^{}, {} iterations x {} sources, alloc counting {}",
        opts.scale,
        opts.iterations,
        opts.sources,
        if hotpath::alloc_counting_enabled() {
            "on"
        } else {
            "off (build with --features count-alloc)"
        }
    );
    let report = hotpath::run(opts);
    let text = report.to_json();
    if let Err(e) = hotpath::check_artifact(&text) {
        // The emitter and the schema live in the same crate; disagreement
        // is a bug worth failing loudly on before the artifact lands.
        eprintln!("bench_hotpath: emitted artifact failed self-check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("bench_hotpath: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    for w in &report.workloads {
        eprintln!(
            "  {} (n={}, m={}, adaptive delta {} vs default {})",
            w.name, w.n, w.m, w.adaptive_delta, w.default_delta
        );
        for e in &w.engines {
            eprintln!(
                "    {:<16} {:>10.4}s  {:>12.0} relax/s  {:>10.1} allocs/query",
                e.name,
                e.wall_secs,
                e.relaxations_per_sec(),
                e.allocs_per_query
            );
        }
    }
    let r = &report.registry;
    eprintln!(
        "  registry ({}, arena {} bytes)",
        r.workload, r.arena_arc_bytes
    );
    for s in &r.splits {
        eprintln!(
            "    {:>2} deltas: {:>12} bytes duplicated vs {:>12} offset-view",
            s.delta_count, s.duplicated_bytes, s.offset_view_bytes
        );
    }
    for g in &r.grid {
        eprintln!(
            "    {:>2} graphs: {:>12} bytes resident  {:>12.0} relax/s",
            g.graphs,
            g.resident_bytes,
            g.relaxations_per_sec()
        );
    }
    println!("{out}");
    ExitCode::SUCCESS
}

/// Relax/s may legitimately swing between machines and runs, so the gate
/// only fails on a >2x collapse — wide enough for shared-runner noise,
/// tight enough to catch a hot path regressing to the seed kernel.
const DIFF_TOLERANCE: f64 = 2.0;

fn run_diff(base_path: &str, cur_path: &str) -> ExitCode {
    let read_checked = |path: &str| -> Result<mmt_bench::json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        hotpath::check_artifact(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, cur) = match (read_checked(base_path), read_checked(cur_path)) {
        (Ok(base), Ok(cur)) => (base, cur),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_hotpath: {e}");
            return ExitCode::FAILURE;
        }
    };
    match hotpath::diff_artifacts(&base, &cur, DIFF_TOLERANCE) {
        Ok(lines) => {
            for l in &lines {
                eprintln!(
                    "  {:<24} {:<16} {:>12.0} -> {:>12.0} relax/s ({:.2}x)",
                    l.workload,
                    l.engine,
                    l.baseline,
                    l.current,
                    l.ratio()
                );
            }
            println!(
                "{} pairs within {DIFF_TOLERANCE}x of {base_path}",
                lines.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_hotpath: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_hotpath: {msg}");
    eprintln!("usage: bench_hotpath [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]");
    ExitCode::FAILURE
}
