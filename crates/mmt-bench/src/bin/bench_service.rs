//! `bench_service` — the reproducible serving-layer SLO baseline.
//!
//! ```text
//! bench_service [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]
//! ```
//!
//! * default: run the full shape (honours `MMT_SCALE` / `MMT_RUNS`) and
//!   write `BENCH_service.json`;
//! * `--smoke`: the CI shape — tiny scale, both modes, same artifact;
//! * `--out PATH`: write the artifact somewhere else;
//! * `--check PATH`: don't run anything — parse an existing artifact and
//!   validate it against the checked-in schema, exiting non-zero on any
//!   violation;
//! * `--diff BASE CUR`: compare two artifacts mode for mode, exiting
//!   non-zero when the current run serves queries more than 2x slower
//!   than the baseline, or when a queue-wait p95 grows past 2x the
//!   baseline plus a 20 ms absolute floor (bucket-bound quantiles at
//!   smoke scale are noise below that). This is the CI query-plane gate
//!   against the checked-in `BENCH_service.json`.

use mmt_bench::service::{self, ServiceOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = String::from("BENCH_service.json");
    let mut check: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => return usage("--check needs a path"),
            },
            "--diff" => match (args.next(), args.next()) {
                (Some(base), Some(cur)) => diff = Some((base, cur)),
                _ => return usage("--diff needs a baseline path and a current path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_service [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some((base_path, cur_path)) = diff {
        return run_diff(&base_path, &cur_path);
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_service: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match service::check_artifact(&text) {
            Ok(_) => {
                println!("{path}: valid BENCH_service artifact");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_service: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = if smoke {
        ServiceOptions::smoke()
    } else {
        ServiceOptions::full()
    };
    eprintln!(
        "bench_service: scale 2^{}, {} workers, {} rounds x {} queries",
        opts.scale, opts.workers, opts.rounds, opts.queries
    );
    let report = service::run(opts);
    let text = report.to_json();
    if let Err(e) = service::check_artifact(&text) {
        // The emitter and the schema live in the same crate; disagreement
        // is a bug worth failing loudly on before the artifact lands.
        eprintln!("bench_service: emitted artifact failed self-check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("bench_service: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("  {} (n={}, m={})", report.workload, report.n, report.m);
    for s in &report.modes {
        eprintln!(
            "    {:<10} {:>9.0} served/s  p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  wait-p95 {:>7}us  {} batches / {} coalesced",
            s.mode,
            s.served_per_sec(),
            s.latency_us.p50,
            s.latency_us.p95,
            s.latency_us.p99,
            s.queue_wait_us.p95,
            s.coalesced_batches,
            s.coalesced_queries
        );
    }
    println!("{out}");
    ExitCode::SUCCESS
}

/// Wall-clock service throughput swings with machine load, so the gate
/// only fails on a >2x collapse — wide enough for shared-runner noise,
/// tight enough to catch the query plane regressing to one-at-a-time.
const DIFF_TOLERANCE: f64 = 2.0;

fn run_diff(base_path: &str, cur_path: &str) -> ExitCode {
    let read_checked = |path: &str| -> Result<mmt_bench::json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        service::check_artifact(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, cur) = match (read_checked(base_path), read_checked(cur_path)) {
        (Ok(base), Ok(cur)) => (base, cur),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_service: {e}");
            return ExitCode::FAILURE;
        }
    };
    match service::diff_artifacts(&base, &cur, DIFF_TOLERANCE) {
        Ok(lines) => {
            for l in &lines {
                eprintln!(
                    "  {:<10} {:>9.0} -> {:>9.0} served/s ({:.2}x)  wait-p95 {:>7} -> {:>7}us",
                    l.mode,
                    l.baseline_served,
                    l.current_served,
                    l.ratio(),
                    l.baseline_p95_wait,
                    l.current_p95_wait
                );
            }
            println!(
                "{} modes within {DIFF_TOLERANCE}x of {base_path}",
                lines.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_service: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_service: {msg}");
    eprintln!("usage: bench_service [--smoke] [--out PATH] [--check PATH] [--diff BASE CUR]");
    ExitCode::FAILURE
}
