//! Shared machinery for the benchmark harness: the paper's workload grid,
//! scaled to the host, plus the reference numbers from the paper so every
//! table prints "paper vs measured" side by side.
//!
//! The paper ran 2^24–2^26-vertex graphs on a 40-processor MTA-2 with
//! 160 GB of RAM; the default scale here is controlled by the `MMT_SCALE`
//! environment variable (log2 of the *base* vertex count, default 15) so
//! the whole suite fits a commodity container. Family shapes relative to
//! the base scale `s` mirror the paper exactly:
//!
//! | paper family          | here                        |
//! |-----------------------|-----------------------------|
//! | Rand-UWD-2^25-2^25    | Rand-UWD-2^s-2^s            |
//! | Rand-PWD-2^25-2^25    | Rand-PWD-2^s-2^s            |
//! | Rand-UWD-2^24-2^2     | Rand-UWD-2^(s-1)-2^2        |
//! | RMAT-UWD-2^26-2^26    | RMAT-UWD-2^(s+1)-2^(s+1)    |
//! | RMAT-PWD-2^25-2^25    | RMAT-PWD-2^s-2^s            |
//! | RMAT-UWD-2^26-2^2     | RMAT-UWD-2^(s+1)-2^2        |

// The counting allocator (behind `count-alloc`) is the one sanctioned use
// of `unsafe` in the whole workspace: a `GlobalAlloc` impl cannot be safe.
// Default builds keep the blanket ban.
#![cfg_attr(not(feature = "count-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-alloc", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "count-alloc")]
pub mod alloc_count;
pub mod hotpath;
pub mod json;
pub mod layout;
pub mod results;
pub mod road;
pub mod scaling;
pub mod service;

pub use results::{Measurement, RunRecord};

use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::{EdgeList, VertexId};
use mmt_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Reads the base scale (log2 n) from `MMT_SCALE`, defaulting to `default`.
pub fn scale_from_env(default: u32) -> u32 {
    std::env::var("MMT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|s: u32| s.clamp(6, 26))
        .unwrap_or(default)
}

/// Number of timed SSSP runs per measurement, following the paper ("an
/// average of 10 SSSP runs"); override with `MMT_RUNS`.
pub fn runs_from_env() -> usize {
    std::env::var("MMT_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// A workload together with the values the paper reported for it, where
/// applicable (seconds on 40 MTA-2 processors).
///
/// Provenance: `paper_thorup` and `paper_ch` are the exact values of the
/// paper's Tables 4–5. The Δ-stepping and naive-toVisit ("Thorup A")
/// columns are corrupted in the publicly available text, so those fields
/// are **reconstructions** from the paper's qualitative statements
/// (Δ-stepping wins every single-source run by roughly 2–4×; the selective
/// toVisit strategy is "nearly two-fold" faster than naive) and from the
/// companion Madduri et al. ALENEX'07 measurements. They are used only to
/// sanity-check *shape*, never absolute values.
#[derive(Debug, Clone, Copy)]
pub struct Family {
    /// The generator spec (already scaled to the host).
    pub spec: WorkloadSpec,
    /// The paper's name for the corresponding full-scale family.
    pub paper_name: &'static str,
    /// Paper Table 5: Δ-stepping seconds.
    pub paper_delta: f64,
    /// Paper Tables 4–6: Thorup seconds (selective toVisit, "Thorup B").
    pub paper_thorup: f64,
    /// Paper Tables 3/5: CH construction seconds.
    pub paper_ch: f64,
    /// Paper Table 6: naive-toVisit Thorup seconds ("Thorup A").
    pub paper_thorup_naive: f64,
}

/// The six families of the paper's Tables 2–6, scaled so the base family
/// has `2^base_scale` vertices.
pub fn paper_families(base_scale: u32) -> Vec<Family> {
    let s = base_scale;
    use GraphClass::{Random, Rmat};
    use WeightDist::{PolyLog, Uniform};
    let spec = |class, dist, log_n: u32, log_c: u32| WorkloadSpec {
        class,
        dist,
        log_n,
        log_c,
        seed: 0xC0FFEE ^ (log_n as u64) << 8 ^ log_c as u64,
    };
    vec![
        Family {
            spec: spec(Random, Uniform, s, s),
            paper_name: "Rand-UWD-2^25-2^25",
            paper_delta: 2.68,
            paper_thorup: 7.53,
            paper_ch: 23.85,
            paper_thorup_naive: 13.57,
        },
        Family {
            spec: spec(Random, PolyLog, s, s),
            paper_name: "Rand-PWD-2^25-2^25",
            paper_delta: 2.68,
            paper_thorup: 7.54,
            paper_ch: 23.41,
            paper_thorup_naive: 13.70,
        },
        Family {
            spec: spec(Random, Uniform, s.saturating_sub(1), 2),
            paper_name: "Rand-UWD-2^24-2^2",
            paper_delta: 1.83,
            paper_thorup: 5.67,
            paper_ch: 13.87,
            paper_thorup_naive: 9.49,
        },
        Family {
            spec: spec(Rmat, Uniform, s + 1, s + 1),
            paper_name: "RMAT-UWD-2^26-2^26",
            paper_delta: 4.00,
            paper_thorup: 15.86,
            paper_ch: 44.33,
            paper_thorup_naive: 30.36,
        },
        Family {
            spec: spec(Rmat, PolyLog, s, s),
            paper_name: "RMAT-PWD-2^25-2^25",
            paper_delta: 2.37,
            paper_thorup: 8.16,
            paper_ch: 23.58,
            paper_thorup_naive: 15.58,
        },
        Family {
            spec: spec(Rmat, Uniform, s + 1, 2),
            paper_name: "RMAT-UWD-2^26-2^2",
            paper_delta: 2.88,
            paper_thorup: 7.39,
            paper_ch: 18.67,
            paper_thorup_naive: 13.65,
        },
    ]
}

/// A generated, frozen workload ready for solvers.
#[derive(Debug)]
pub struct Workload {
    /// The spec it was generated from.
    pub spec: WorkloadSpec,
    /// Edge-list form (CH builders consume this).
    pub edges: EdgeList,
    /// Adjacency form (solvers consume this).
    pub graph: CsrGraph,
}

impl Workload {
    /// Generates and freezes `spec`.
    pub fn generate(spec: WorkloadSpec) -> Self {
        let edges = spec.generate();
        let graph = CsrGraph::from_edge_list(&edges);
        Self { spec, edges, graph }
    }

    /// `k` deterministic query sources (used by the SSSP benches; sources
    /// are drawn uniformly, seeded by the workload).
    pub fn sources(&self, k: usize) -> Vec<VertexId> {
        let mut rng = SmallRng::seed_from_u64(self.spec.seed ^ 0x5EED);
        (0..k)
            .map(|_| rng.gen_range(0..self.graph.n()) as VertexId)
            .collect()
    }

    /// A single deterministic source.
    pub fn source(&self) -> VertexId {
        self.sources(1)[0]
    }
}

/// Formats a speedup/ratio column.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// The shared topology header every artifact stamps: the pin policy the
/// process resolved from `MMT_PIN` and the host's NUMA node count. Both
/// are descriptive, never gated — a 1-node container records `1` and a
/// build without the `pin` feature records the policy it *would* have
/// applied (pinning is advisory throughout).
pub fn topology_header() -> (&'static str, usize) {
    (
        mmt_platform::PinPolicy::from_env().label(),
        mmt_platform::CpuTopology::discover().numa_nodes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_families_match_paper_shapes() {
        let fams = paper_families(15);
        assert_eq!(fams.len(), 6);
        assert_eq!(fams[0].spec.name(), "Rand-UWD-2^15-2^15");
        assert_eq!(fams[2].spec.name(), "Rand-UWD-2^14-2^2");
        assert_eq!(fams[3].spec.name(), "RMAT-UWD-2^16-2^16");
        assert_eq!(fams[5].spec.name(), "RMAT-UWD-2^16-2^2");
    }

    #[test]
    fn workload_generation_and_sources() {
        let fams = paper_families(8);
        let w = Workload::generate(fams[0].spec);
        assert_eq!(w.graph.n(), 256);
        assert_eq!(w.graph.m(), 1024);
        let s = w.sources(5);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|&v| (v as usize) < w.graph.n()));
        assert_eq!(s, w.sources(5), "sources are deterministic");
    }

    #[test]
    fn scale_env_parsing() {
        // Can't mutate the environment safely in tests; just check default
        // and clamping logic via the public surface.
        let s = scale_from_env(15);
        assert!((6..=26).contains(&s));
    }
}
