//! The thread-scaling grid behind `bench_scaling`.
//!
//! Two fixed-seed workloads (Rand-UWD and RMAT-PWD, the extremes of the
//! hot-path grid) are run through the parallel SSSP engines — pre-split
//! Δ-stepping, ρ-stepping and Δ*-stepping on the contention-free bins,
//! and the pooled Thorup batch engine — at every thread count in a sweep
//! (1/2/4/… up to the host's cores by default), once per pin policy
//! (unpinned and compact-pinned by default). Each `(engine, threads,
//! pin)` cell records wall time, relaxations/sec and the speedup against
//! the engine's smallest-thread-count row under the same policy, into
//! `BENCH_scaling.json` validated by `schema/BENCH_scaling.schema.json`.
//!
//! Honesty note: the artifact header records the sweep and the host's
//! logical core count. On a 1-core container the sweep degenerates to
//! `[1]` (or whatever `--threads` forces), the multi-thread rows
//! measure scheduling overhead, not speedup, and pinning is a no-op that
//! cannot help — the CI gate therefore asserts the artifact's *shape*
//! and throughput floor on single-thread unpinned cells only (`--check`
//! / `--diff`), never a speedup or a pinned-vs-unpinned delta.

use crate::hotpath::{counters_json, DiffLine};
use crate::json::{self, Json};
use mmt_baselines::{
    adaptive_delta, default_rho, delta_star_presplit, delta_stepping_presplit,
    rho_stepping_presplit, DeltaScratch, StepScratch,
};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::Weight;
use mmt_graph::SplitCsr;
use mmt_platform::pool::{sweep_points, with_pinned_pool};
use mmt_platform::{available_threads, CountersSnapshot, EventCounters, PinPolicy};
use mmt_thorup::{BatchSolver, ThorupSolver};
use std::time::Instant;

/// The checked-in schema `BENCH_scaling.json` must validate against.
pub const SCHEMA_TEXT: &str = include_str!("../schema/BENCH_scaling.schema.json");

/// Format version stamped into the artifact. Version 2 added the pin
/// dimension (`pins` sweep, per-cell `pin`) and the shared `pin_policy`
/// / `numa_nodes` topology header.
pub const FORMAT_VERSION: u64 = 2;

/// Run shape: scale, repetitions, sources, and the thread sweep.
#[derive(Debug, Clone)]
pub struct ScalingOptions {
    /// log2 of the vertex count per workload.
    pub scale: u32,
    /// Timed repetitions of the whole source sweep, per cell.
    pub iterations: usize,
    /// Query sources per workload.
    pub sources: usize,
    /// Thread counts to sweep, ascending. The first entry is the speedup
    /// baseline (1 unless overridden).
    pub threads: Vec<usize>,
    /// Pin policies to sweep the whole thread grid under (unpinned and
    /// compact-pinned by default, so the artifact always carries the
    /// pinned-vs-unpinned comparison).
    pub pins: Vec<PinPolicy>,
    /// True for the CI smoke shape.
    pub smoke: bool,
}

impl ScalingOptions {
    /// The CI smoke shape: tiny scale, the default sweep — seconds even
    /// on one core, every artifact field exercised.
    pub fn smoke() -> Self {
        Self {
            scale: 8,
            iterations: 2,
            sources: 3,
            threads: sweep_points(available_threads()),
            pins: vec![PinPolicy::None, PinPolicy::Compact],
            smoke: true,
        }
    }

    /// The default measurement shape (honours `MMT_SCALE` / `MMT_RUNS`).
    pub fn full() -> Self {
        Self {
            scale: crate::scale_from_env(13),
            iterations: crate::runs_from_env().min(4),
            sources: 4,
            threads: sweep_points(available_threads()),
            pins: vec![PinPolicy::None, PinPolicy::Compact],
            smoke: false,
        }
    }

    /// Replaces the sweep (e.g. from `--threads 1,2`), keeping it sorted,
    /// deduplicated and non-empty.
    pub fn with_threads(mut self, mut threads: Vec<usize>) -> Self {
        threads.retain(|&t| t > 0);
        threads.sort_unstable();
        threads.dedup();
        if !threads.is_empty() {
            self.threads = threads;
        }
        self
    }
}

/// One `(engine, threads)` cell.
#[derive(Debug, Clone)]
pub struct ScalingSample {
    /// Engine name (matches the mmt-verify registry).
    pub engine: &'static str,
    /// Thread budget installed for this cell.
    pub threads: usize,
    /// Pin policy the cell's pool workers ran under (advisory; a no-op
    /// on hosts without exposed topology or builds without `pin`).
    pub pin: PinPolicy,
    /// Queries answered inside `wall_secs`.
    pub queries: usize,
    /// Total wall time for all queries.
    pub wall_secs: f64,
    /// Edge relaxations performed (equals `counters.relaxations`).
    pub relaxations: u64,
    /// Full event-counter snapshot for the cell.
    pub counters: CountersSnapshot,
}

impl ScalingSample {
    /// Relaxations per second of wall time (0 when nothing was measured).
    pub fn relaxations_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.relaxations as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One workload's sweep.
#[derive(Debug, Clone)]
pub struct ScalingWorkload {
    /// Workload name (`Rand-UWD-2^8-2^8`, ...).
    pub name: String,
    /// Vertices.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// The adaptive Δ the bucketed engines split at.
    pub delta: u64,
    /// The ρ the ρ-stepping cells extract per step.
    pub rho: usize,
    /// Every `(engine, threads)` cell, grouped by engine then threads.
    pub grid: Vec<ScalingSample>,
}

impl ScalingWorkload {
    /// Speedup of `sample` against the same engine's smallest-thread-count
    /// cell under the same pin policy (1.0 for that baseline cell itself;
    /// 0 when unmeasurable).
    pub fn speedup_vs_base(&self, sample: &ScalingSample) -> f64 {
        let base = self
            .grid
            .iter()
            .filter(|s| s.engine == sample.engine && s.pin == sample.pin)
            .min_by_key(|s| s.threads);
        match base {
            Some(b) if sample.wall_secs > 0.0 => b.wall_secs / sample.wall_secs,
            _ => 0.0,
        }
    }
}

/// The whole artifact.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Run shape (including the thread sweep).
    pub options: ScalingOptions,
    /// Logical cores on the measuring host.
    pub host_logical_cores: usize,
    /// The `MMT_PIN` policy the process resolved at startup (the per-cell
    /// `pin` labels record what each cell actually ran under).
    pub pin_policy: &'static str,
    /// NUMA nodes the host exposes (1 on flat or opaque hosts).
    pub numa_nodes: usize,
    /// Peak RSS at the end of the run (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Per-workload sweeps.
    pub workloads: Vec<ScalingWorkload>,
}

/// The two scaling workloads at `scale`: the extremes of the hot-path
/// grid (uniform random and power-law RMAT), same fixed seed.
pub fn scaling_specs(scale: u32) -> Vec<WorkloadSpec> {
    [
        (GraphClass::Random, WeightDist::Uniform),
        (GraphClass::Rmat, WeightDist::PolyLog),
    ]
    .into_iter()
    .map(|(class, dist)| WorkloadSpec {
        class,
        dist,
        log_n: scale,
        log_c: scale,
        seed: 0x2007,
    })
    .collect()
}

/// Runs the whole sweep.
pub fn run(opts: &ScalingOptions) -> ScalingReport {
    let workloads = scaling_specs(opts.scale)
        .into_iter()
        .map(|spec| run_workload(spec, opts))
        .collect();
    let (pin_policy, numa_nodes) = crate::topology_header();
    ScalingReport {
        options: opts.clone(),
        host_logical_cores: available_threads(),
        pin_policy,
        numa_nodes,
        peak_rss_bytes: mmt_platform::mem::peak_rss_bytes().unwrap_or(0),
        workloads,
    }
}

fn run_workload(spec: WorkloadSpec, opts: &ScalingOptions) -> ScalingWorkload {
    let w = crate::Workload::generate(spec);
    let g = &w.graph;
    let sources = w.sources(opts.sources);
    let queries = sources.len() * opts.iterations;
    let delta = adaptive_delta(g);
    let delta_w = delta.min(u32::MAX as u64).max(1) as Weight;
    let rho = default_rho(g.n());
    let ch = mmt_ch::build_parallel(&w.edges);

    let mut grid = Vec::new();
    for &pin in &opts.pins {
        for &threads in &opts.threads {
            // Everything thread-shaped (scratch lanes, batch pools) is
            // built inside the pool so each cell measures an
            // honestly-sized engine under the cell's pin policy.
            with_pinned_pool(threads, pin, || {
                let split = SplitCsr::new(g, delta_w);

                {
                    let counters = EventCounters::new();
                    let mut scratch = DeltaScratch::new(&split);
                    delta_stepping_presplit(&split, sources[0], &mut scratch, None); // warm-up
                    let t0 = Instant::now();
                    for _ in 0..opts.iterations {
                        for &s in &sources {
                            delta_stepping_presplit(&split, s, &mut scratch, Some(&counters));
                            std::hint::black_box(scratch.distance(s));
                        }
                    }
                    grid.push(finish(
                        "delta-presplit",
                        threads,
                        pin,
                        queries,
                        t0.elapsed().as_secs_f64(),
                        &counters,
                    ));
                }

                {
                    let counters = EventCounters::new();
                    let mut scratch = StepScratch::new(&split);
                    rho_stepping_presplit(&split, sources[0], rho, &mut scratch, None); // warm-up
                    let t0 = Instant::now();
                    for _ in 0..opts.iterations {
                        for &s in &sources {
                            rho_stepping_presplit(&split, s, rho, &mut scratch, Some(&counters));
                            std::hint::black_box(scratch.distance(s));
                        }
                    }
                    grid.push(finish(
                        "rho-stepping",
                        threads,
                        pin,
                        queries,
                        t0.elapsed().as_secs_f64(),
                        &counters,
                    ));
                }

                {
                    let counters = EventCounters::new();
                    let mut scratch = StepScratch::new(&split);
                    delta_star_presplit(&split, sources[0], &mut scratch, None); // warm-up
                    let t0 = Instant::now();
                    for _ in 0..opts.iterations {
                        for &s in &sources {
                            delta_star_presplit(&split, s, &mut scratch, Some(&counters));
                            std::hint::black_box(scratch.distance(s));
                        }
                    }
                    grid.push(finish(
                        "delta-star",
                        threads,
                        pin,
                        queries,
                        t0.elapsed().as_secs_f64(),
                        &counters,
                    ));
                }

                {
                    let counters = EventCounters::new();
                    let solver = ThorupSolver::new(g, &ch).with_counters(&counters);
                    let batch = BatchSolver::new(&solver);
                    drop(batch.solve_batch(&sources)); // warm-up
                    let t0 = Instant::now();
                    for _ in 0..opts.iterations {
                        let rows = batch.solve_batch(&sources);
                        std::hint::black_box(rows.len());
                    }
                    grid.push(finish(
                        "thorup-batch",
                        threads,
                        pin,
                        queries,
                        t0.elapsed().as_secs_f64(),
                        &counters,
                    ));
                }
            });
        }
    }

    ScalingWorkload {
        name: spec.name(),
        n: g.n(),
        m: g.m(),
        delta,
        rho,
        grid,
    }
}

fn finish(
    engine: &'static str,
    threads: usize,
    pin: PinPolicy,
    queries: usize,
    wall_secs: f64,
    counters: &EventCounters,
) -> ScalingSample {
    let snap = counters.snapshot();
    ScalingSample {
        engine,
        threads,
        pin,
        queries,
        wall_secs,
        relaxations: snap.relaxations,
        counters: snap,
    }
}

impl ScalingReport {
    /// Renders the artifact as pretty-stable JSON (two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", FORMAT_VERSION));
        out.push_str(&format!("  \"smoke\": {},\n", self.options.smoke));
        out.push_str(&format!("  \"scale\": {},\n", self.options.scale));
        out.push_str(&format!("  \"iterations\": {},\n", self.options.iterations));
        out.push_str(&format!(
            "  \"sources_per_workload\": {},\n",
            self.options.sources
        ));
        let threads: Vec<String> = self.options.threads.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("  \"threads\": [{}],\n", threads.join(", ")));
        let pins: Vec<String> = self
            .options
            .pins
            .iter()
            .map(|p| format!("\"{}\"", p.label()))
            .collect();
        out.push_str(&format!("  \"pins\": [{}],\n", pins.join(", ")));
        out.push_str(&format!(
            "  \"host_logical_cores\": {},\n",
            self.host_logical_cores
        ));
        out.push_str(&format!("  \"pin_policy\": \"{}\",\n", self.pin_policy));
        out.push_str(&format!("  \"numa_nodes\": {},\n", self.numa_nodes));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json::escape(&w.name)));
            out.push_str(&format!("      \"n\": {},\n", w.n));
            out.push_str(&format!("      \"m\": {},\n", w.m));
            out.push_str(&format!("      \"delta\": {},\n", w.delta));
            out.push_str(&format!("      \"rho\": {},\n", w.rho));
            out.push_str("      \"grid\": [\n");
            for (si, s) in w.grid.iter().enumerate() {
                out.push_str("        {");
                out.push_str(&format!("\"engine\": \"{}\", ", json::escape(s.engine)));
                out.push_str(&format!("\"threads\": {}, ", s.threads));
                out.push_str(&format!("\"pin\": \"{}\", ", s.pin.label()));
                out.push_str(&format!("\"queries\": {}, ", s.queries));
                out.push_str(&format!("\"wall_secs\": {}, ", s.wall_secs));
                out.push_str(&format!("\"relaxations\": {}, ", s.relaxations));
                out.push_str(&format!(
                    "\"relaxations_per_sec\": {}, ",
                    s.relaxations_per_sec()
                ));
                out.push_str(&format!("\"speedup_vs_base\": {}, ", w.speedup_vs_base(s)));
                out.push_str(&format!(
                    "\"counters\": {}}}{}\n",
                    counters_json(&s.counters),
                    if si + 1 < w.grid.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses `text` and validates it against the checked-in schema. This is
/// what `bench_scaling --check` and the CI smoke job run.
pub fn check_artifact(text: &str) -> Result<Json, String> {
    let schema = json::parse(SCHEMA_TEXT).map_err(|e| format!("schema is invalid JSON: {e}"))?;
    let value = json::parse(text).map_err(|e| format!("artifact does not parse: {e}"))?;
    json::validate(&value, &schema).map_err(|e| format!("artifact violates schema: {e}"))?;
    Ok(value)
}

fn relax_per_sec_index(value: &Json) -> Vec<(String, String, f64, f64)> {
    let mut out = Vec::new();
    let Some(workloads) = value.get("workloads").and_then(Json::as_arr) else {
        return out;
    };
    for w in workloads {
        let Some(wname) = w.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(grid) = w.get("grid").and_then(Json::as_arr) else {
            continue;
        };
        for s in grid {
            if let (Some(engine), Some(threads), Some(rps)) = (
                s.get("engine").and_then(Json::as_str),
                s.get("threads").and_then(Json::as_num),
                s.get("relaxations_per_sec").and_then(Json::as_num),
            ) {
                let pin = s.get("pin").and_then(Json::as_str).unwrap_or("none");
                out.push((
                    wname.to_string(),
                    format!("{engine}@{threads}/{pin}"),
                    threads,
                    rps,
                ));
            }
        }
    }
    out
}

/// Compares two schema-valid scaling artifacts' relaxations/sec for every
/// `(workload, engine@threads/pin)` cell present in both, failing when a
/// *single-thread unpinned* cell runs more than `tolerance`× slower.
/// Cells at 2+ threads are reported but never gated: on an oversubscribed
/// host their wall time measures scheduler noise, not the kernel. Pinned
/// cells are likewise reported but never gated — pinning is advisory and
/// host-shaped, so a pinned-vs-unpinned delta is information, not a
/// contract. Speedup values are never gated either — on a 1-core host
/// they measure overhead, not scaling. Errs on disjoint grids, same as
/// the hot-path gate.
pub fn diff_artifacts(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) -> Result<Vec<DiffLine>, String> {
    assert!(tolerance >= 1.0);
    let base = relax_per_sec_index(baseline);
    let cur = relax_per_sec_index(current);
    let mut lines = Vec::new();
    let mut gated = Vec::new();
    for (wname, cell, threads, baseline_rps) in &base {
        let Some((_, _, _, current_rps)) = cur.iter().find(|(w, e, _, _)| w == wname && e == cell)
        else {
            continue;
        };
        lines.push(DiffLine {
            workload: wname.clone(),
            engine: cell.clone(),
            baseline: *baseline_rps,
            current: *current_rps,
        });
        if *threads == 1.0 && cell.ends_with("/none") {
            gated.push(lines.len() - 1);
        }
    }
    if lines.is_empty() {
        return Err("artifacts share no (workload, engine@threads) cells to compare".into());
    }
    if let Some(worst) = gated
        .iter()
        .map(|&i| &lines[i])
        .filter(|l| l.baseline > 0.0 && l.current * tolerance < l.baseline)
        .min_by(|a, b| a.ratio().total_cmp(&b.ratio()))
    {
        return Err(format!(
            "relaxations/sec regression: {} / {} at {:.0} vs baseline {:.0} ({:.2}x, tolerance {}x)",
            worst.workload,
            worst.engine,
            worst.current,
            worst.baseline,
            worst.ratio(),
            tolerance
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalingOptions {
        ScalingOptions {
            scale: 6,
            iterations: 1,
            sources: 2,
            threads: vec![1, 2],
            pins: vec![PinPolicy::None, PinPolicy::Compact],
            smoke: true,
        }
    }

    #[test]
    fn smoke_run_emits_a_schema_valid_artifact() {
        let report = run(&tiny());
        assert_eq!(report.workloads.len(), 2);
        assert!(report.host_logical_cores >= 1);
        for w in &report.workloads {
            // 4 engines × 2 thread counts × 2 pin policies, grouped by
            // pin, then thread count.
            assert_eq!(w.grid.len(), 16);
            assert!(w.grid.iter().all(|s| s.wall_secs > 0.0));
            assert!(w.grid.iter().all(|s| s.relaxations > 0));
            assert!(w
                .grid
                .iter()
                .all(|s| s.counters.relaxations == s.relaxations));
            for engine in [
                "delta-presplit",
                "rho-stepping",
                "delta-star",
                "thorup-batch",
            ] {
                let cells: Vec<_> = w.grid.iter().filter(|s| s.engine == engine).collect();
                assert_eq!(cells.len(), 4, "{engine}");
                assert_eq!(cells[0].threads, 1);
                assert_eq!(cells[1].threads, 2);
                assert_eq!(cells[0].pin, PinPolicy::None);
                assert_eq!(cells[2].pin, PinPolicy::Compact);
                for pin in [PinPolicy::None, PinPolicy::Compact] {
                    let base = cells
                        .iter()
                        .filter(|s| s.pin == pin)
                        .min_by_key(|s| s.threads)
                        .unwrap();
                    assert!(
                        (w.speedup_vs_base(base) - 1.0).abs() < 1e-9,
                        "{engine}/{}: smallest-thread cell is its own baseline",
                        pin.label()
                    );
                }
            }
            // The bucketed engines walk the same graph: identical relax
            // totals at every thread count (the determinism the kernels
            // guarantee), so relax/s comparisons across cells are honest.
            let presplit: Vec<u64> = w
                .grid
                .iter()
                .filter(|s| s.engine == "delta-presplit")
                .map(|s| s.relaxations)
                .collect();
            assert!(
                presplit.windows(2).all(|p| p[0] == p[1]),
                "{}: {presplit:?}",
                w.name
            );
        }
        let text = report.to_json();
        let value = check_artifact(&text).expect("artifact must satisfy the schema");
        assert_eq!(
            value.get("version").and_then(Json::as_num),
            Some(FORMAT_VERSION as f64)
        );
        assert_eq!(
            value.get("host_logical_cores").and_then(Json::as_num),
            Some(report.host_logical_cores as f64)
        );
        assert_eq!(
            value.get("numa_nodes").and_then(Json::as_num),
            Some(report.numa_nodes as f64)
        );
        let cells = relax_per_sec_index(&value);
        assert_eq!(cells.len(), 32);
        assert!(cells.iter().any(|(_, e, _, _)| e == "rho-stepping@1/none"));
        assert!(cells
            .iter()
            .any(|(_, e, _, _)| e == "rho-stepping@1/compact"));
    }

    /// Zeroes the `nth` (0-based) `relaxations_per_sec` value in a
    /// rendered artifact by splicing a leading `0` onto the number.
    fn collapse_nth_rps(text: &str, nth: usize) -> String {
        let key = "\"relaxations_per_sec\": ";
        let mut start = 0;
        for _ in 0..=nth {
            start = text[start..].find(key).unwrap() + start + key.len();
        }
        let end = start + text[start..].find(',').unwrap();
        format!("{}0{}", &text[..start], &text[end..])
    }

    #[test]
    fn diff_gates_throughput_but_not_speedup() {
        let report = run(&tiny());
        let value = check_artifact(&report.to_json()).unwrap();
        // Self-diff always passes.
        let lines = diff_artifacts(&value, &value, 2.0).unwrap();
        assert_eq!(lines.len(), 32);
        assert!(lines.iter().all(|l| (l.ratio() - 1.0).abs() < 1e-12));
        // A collapsed single-thread cell fails the gate.
        let text = report.to_json();
        let slow = check_artifact(&collapse_nth_rps(&text, 0)).unwrap();
        assert!(diff_artifacts(&value, &slow, 2.0).is_err());
        // A collapsed 2-thread cell does NOT: oversubscribed cells are
        // reported but never gated (grid order is 4 engines @1, then @2,
        // per pin policy — so occurrence 4 is delta-presplit@2 unpinned).
        let noisy = check_artifact(&collapse_nth_rps(&text, 4)).unwrap();
        let lines = diff_artifacts(&value, &noisy, 2.0).unwrap();
        assert!(lines
            .iter()
            .any(|l| l.engine == "delta-presplit@2/none" && l.ratio() < 0.5));
        // Nor does a collapsed *pinned* single-thread cell (occurrence 8
        // is delta-presplit@1 compact-pinned): pinned deltas are recorded,
        // never gated.
        let pinned = check_artifact(&collapse_nth_rps(&text, 8)).unwrap();
        let lines = diff_artifacts(&value, &pinned, 2.0).unwrap();
        assert!(lines
            .iter()
            .any(|l| l.engine == "delta-presplit@1/compact" && l.ratio() < 0.5));
        // Disjoint grids are an error, not a silent pass.
        let renamed = json::parse(
            r#"{"workloads": [{"name": "other", "grid": [
                {"engine": "rho-stepping", "threads": 1, "relaxations_per_sec": 1.0}
            ]}]}"#,
        )
        .unwrap();
        assert!(diff_artifacts(&value, &renamed, 2.0).is_err());
    }

    #[test]
    fn with_threads_sanitises_the_sweep() {
        let opts = tiny().with_threads(vec![4, 2, 2, 0, 1]);
        assert_eq!(opts.threads, vec![1, 2, 4]);
        let opts = tiny().with_threads(vec![]);
        assert_eq!(opts.threads, vec![1, 2], "empty override keeps the sweep");
    }

    #[test]
    fn truncated_artifact_fails_the_check() {
        let report = run(&ScalingOptions {
            threads: vec![1],
            ..tiny()
        });
        let text = report.to_json();
        assert!(check_artifact(&text[..text.len() / 2]).is_err());
        assert!(check_artifact("{\"version\": 1}").is_err());
    }
}
