//! Cross-crate schema contracts: the JSON the serving layer emits — the
//! metrics snapshot and the per-query trace lines — parsed and validated
//! with the same hand-rolled checker that gates the bench artifacts. The
//! emitters live in `mmt-thorup` and the schemas here, so these tests are
//! what keeps the two from drifting apart.

use mmt_bench::json::{self, Json};
use mmt_ch::build_serial;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::CsrGraph;
use mmt_thorup::{
    GraphRegistry, MemoryTraceSink, QueryRequest, QueryService, TraceEvent, TraceSink,
};
use std::sync::Arc;
use std::time::Duration;

const METRICS_SCHEMA: &str = include_str!("../schema/metrics.schema.json");

fn traced_service() -> (QueryService, Arc<MemoryTraceSink>) {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6);
    spec.seed = 9;
    let el = spec.generate();
    let graph = Arc::new(CsrGraph::from_edge_list(&el));
    let ch = Arc::new(build_serial(&el, mmt_ch::ChMode::Collapsed));
    let mut registry = GraphRegistry::new();
    registry.register("default", &graph, ch).unwrap();
    let sink = Arc::new(MemoryTraceSink::new());
    let service = QueryService::builder()
        .workers(1)
        .coalesce_budget(Duration::from_millis(200))
        .coalesce_batch_cap(4)
        .trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build_registry(registry)
        .unwrap();
    (service, sink)
}

/// A live metrics snapshot — counters, per-graph sections, quantile
/// exports, raw histograms — must satisfy the checked-in schema, so
/// dashboards can rely on the shape without reading Rust.
#[test]
fn metrics_snapshot_json_satisfies_the_checked_in_schema() {
    let (service, _sink) = traced_service();
    let handles: Vec<_> = (0..8u32).map(|s| service.submit(s * 5).unwrap()).collect();
    for h in handles {
        h.wait().unwrap();
    }
    // Exercise a rejection row too: an unknown graph id is typed input.
    let snap = service.metrics().snapshot();
    let text = snap.to_json();
    let schema = json::parse(METRICS_SCHEMA).expect("schema is valid JSON");
    let value = json::parse(&text).expect("snapshot renders valid JSON");
    json::validate(&value, &schema)
        .unwrap_or_else(|e| panic!("snapshot violates schema: {e}\n{text}"));
    // Spot-check the values survived the round trip numerically.
    assert_eq!(
        value.get("served_full").and_then(Json::as_num),
        Some(snap.served_full as f64)
    );
    assert_eq!(
        value.get("coalesced_batches").and_then(Json::as_num),
        Some(snap.coalesced_batches as f64)
    );
    let q = value.get("latency_quantiles_us").expect("quantile export");
    assert_eq!(
        q.get("p95").and_then(Json::as_num),
        Some(snap.latency_quantiles().p95 as f64)
    );
    let graphs = value.get("graphs").and_then(Json::as_arr).unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(
        graphs[0].get("name").and_then(Json::as_str),
        Some("default")
    );
}

/// Every field of a trace line must survive a parse round trip — numbers
/// as numbers, absent stages as real JSON nulls — for both a coalesced
/// event and a bare singleton one.
#[test]
fn trace_lines_round_trip_through_the_json_parser() {
    let coalesced = TraceEvent {
        query: "q7".into(),
        graph: "usa-east".into(),
        kind: "full".into(),
        source: 42,
        enqueue_us: 10,
        dequeue_us: 25,
        coalesce_us: Some(31),
        solve_us: Some(40),
        reply_us: 900,
        batch: Some(3),
        batch_size: 4,
        relaxations: 12_345,
        arcs_scanned: 23_456,
        outcome: "ok".into(),
    };
    let v = json::parse(&coalesced.to_json_line()).expect("trace lines are valid JSON");
    let num = |key: &str| v.get(key).and_then(Json::as_num).unwrap();
    assert_eq!(v.get("query").and_then(Json::as_str), Some("q7"));
    assert_eq!(v.get("graph").and_then(Json::as_str), Some("usa-east"));
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("full"));
    assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
    assert_eq!(num("source"), 42.0);
    assert_eq!(num("enqueue_us"), 10.0);
    assert_eq!(num("dequeue_us"), 25.0);
    assert_eq!(num("coalesce_us"), 31.0);
    assert_eq!(num("solve_us"), 40.0);
    assert_eq!(num("reply_us"), 900.0);
    assert_eq!(num("batch"), 3.0);
    assert_eq!(num("batch_size"), 4.0);
    assert_eq!(num("relaxations"), 12_345.0);
    assert_eq!(num("arcs_scanned"), 23_456.0);

    let singleton = TraceEvent {
        coalesce_us: None,
        solve_us: None,
        batch: None,
        batch_size: 1,
        outcome: "deadline".into(),
        ..coalesced
    };
    let v = json::parse(&singleton.to_json_line()).expect("null stages stay valid JSON");
    assert_eq!(v.get("coalesce_us"), Some(&Json::Null));
    assert_eq!(v.get("solve_us"), Some(&Json::Null));
    assert_eq!(v.get("batch"), Some(&Json::Null));
    assert_eq!(v.get("batch_size").and_then(Json::as_num), Some(1.0));
    assert_eq!(v.get("outcome").and_then(Json::as_str), Some("deadline"));
}

/// The traces a real coalesced service emits parse as JSON lines too —
/// the end-to-end spelling of the synthetic round trip above.
#[test]
fn live_service_trace_lines_parse_and_cover_the_lifecycle() {
    let (service, sink) = traced_service();
    let handles: Vec<_> = (0..4u32)
        .map(|s| service.submit(QueryRequest::new(s * 9)).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let lines = sink.lines();
    assert_eq!(lines.len(), 4);
    for line in &lines {
        let v = json::parse(line).expect("live trace line parses");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("full"));
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
        let enq = v.get("enqueue_us").and_then(Json::as_num).unwrap();
        let rep = v.get("reply_us").and_then(Json::as_num).unwrap();
        assert!(enq <= rep, "{line}");
    }
}
