//! Ablation 2 — the connected-components engines behind the CH builder:
//! parallel label propagation (our "bully" stand-in), Shiloach–Vishkin
//! (the hot-spot-prone comparator the paper avoided), and serial
//! union-find, on the edge mix of a real CH phase.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_cc::{connected_components, CcAlgorithm, EdgeSet};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a2_cc_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let fams = paper_families(scale);
    for fam in [&fams[0], &fams[3]] {
        let w = Workload::generate(fam.spec);
        let set = EdgeSet {
            n: w.edges.n,
            edges: &w.edges.edges,
        };
        let name = fam.spec.name();
        for (label, algo) in [
            ("label_propagation", CcAlgorithm::LabelPropagation),
            ("shiloach_vishkin", CcAlgorithm::ShiloachVishkin),
            ("concurrent_dsu", CcAlgorithm::ConcurrentDsu),
            ("serial_dsu", CcAlgorithm::SerialDsu),
        ] {
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| black_box(connected_components(set, algo)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
