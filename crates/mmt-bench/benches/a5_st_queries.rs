//! Ablation 5 — point-to-point query engines: targeted Thorup (early
//! termination over a prebuilt CH), bidirectional Dijkstra, full Dijkstra,
//! and the via-hub bound from a precomputed `HubDistances` table. This is
//! the s–t landscape the paper's road-network outlook points at.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_baselines::{bidirectional_dijkstra, dijkstra};
use mmt_bench::{scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_thorup::{HubDistances, ThorupInstance, ThorupSolver};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a5_st_queries");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for class in [GraphClass::Random, GraphClass::Grid] {
        let spec = WorkloadSpec::new(class, WeightDist::Uniform, scale, 8);
        let w = Workload::generate(spec);
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let inst = ThorupInstance::new(&ch);
        let pairs: Vec<(u32, u32)> = w.sources(16).chunks(2).map(|c| (c[0], c[1])).collect();
        let name = spec.name();
        group.bench_function(format!("{name}/thorup_targeted"), |b| {
            b.iter(|| {
                for &(s, t) in &pairs {
                    inst.reset(&ch);
                    black_box(solver.solve_target(&inst, s, t));
                }
            })
        });
        group.bench_function(format!("{name}/bidirectional_dijkstra"), |b| {
            b.iter(|| {
                for &(s, t) in &pairs {
                    black_box(bidirectional_dijkstra(&w.graph, s, t));
                }
            })
        });
        group.bench_function(format!("{name}/full_dijkstra"), |b| {
            b.iter(|| {
                for &(s, _) in &pairs {
                    black_box(dijkstra(&w.graph, s));
                }
            })
        });
        let hubs = w.sources(8);
        let table = HubDistances::precompute(&solver, &hubs);
        group.bench_function(format!("{name}/via_hub_bound"), |b| {
            b.iter(|| {
                for &(s, t) in &pairs {
                    black_box(table.via_hub_bound(s, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
