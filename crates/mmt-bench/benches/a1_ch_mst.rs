//! Ablation 1 — CH construction from the original graph (the paper's
//! choice) vs via the minimum spanning tree (Thorup's analysis route).
//! Paper claim (§3.1): building from the original graph "is faster in
//! practice than first constructing the MST and then constructing the CH
//! from it".

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::{build_parallel, build_serial, build_via_mst, ChMode};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a1_ch_from_graph_vs_mst");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let fams = paper_families(scale);
    for fam in [&fams[0], &fams[3], &fams[2]] {
        let w = Workload::generate(fam.spec);
        let name = fam.spec.name();
        group.bench_function(format!("{name}/from_graph_parallel"), |b| {
            b.iter(|| black_box(build_parallel(&w.edges)))
        });
        group.bench_function(format!("{name}/from_graph_serial"), |b| {
            b.iter(|| black_box(build_serial(&w.edges, ChMode::Collapsed)))
        });
        group.bench_function(format!("{name}/via_mst"), |b| {
            b.iter(|| black_box(build_via_mst(&w.edges, ChMode::Collapsed)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
