//! Table 2 — Component Hierarchy statistics per family. The timed portion
//! benches the two construction modes; the statistics themselves (the
//! paper's Comp / Children / Instance columns) are printed once per family
//! so a `cargo bench` log carries the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::{build_serial, ChMode, ChStats};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("table2_ch_stats");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let name = fam.spec.name();
        let faithful = ChStats::of(&build_serial(&w.edges, ChMode::Faithful));
        let collapsed = ChStats::of(&build_serial(&w.edges, ChMode::Collapsed));
        eprintln!(
            "[table2] {name} ({}): faithful comp={} children={:.2} | collapsed comp={} | instance={} graph={}",
            fam.paper_name,
            faithful.components,
            faithful.avg_children,
            collapsed.components,
            mmt_platform::mem::fmt_bytes(collapsed.instance_bytes),
            mmt_platform::mem::fmt_bytes(w.graph.heap_bytes()),
        );
        group.bench_function(format!("{name}/build_faithful"), |b| {
            b.iter(|| black_box(build_serial(&w.edges, ChMode::Faithful)))
        });
        group.bench_function(format!("{name}/build_collapsed"), |b| {
            b.iter(|| black_box(build_serial(&w.edges, ChMode::Collapsed)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
