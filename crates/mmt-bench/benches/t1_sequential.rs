//! Table 1 — sequential Thorup vs the DIMACS reference solver (Goldberg
//! multilevel buckets), plus the CH preprocessing cost, on Random-UWD at
//! two sizes. Paper shape: the reference solver wins by ~2–4×, and CH
//! construction dominates Thorup's preprocessing.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_baselines::{dijkstra, goldberg_sssp};
use mmt_bench::{scale_from_env, Workload};
use mmt_ch::{build_serial, ChMode};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_thorup::{ThorupConfig, ThorupInstance, ThorupSolver};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("table1_sequential");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for log_n in [scale, scale + 1] {
        let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, log_n);
        let w = Workload::generate(spec);
        let name = spec.name();
        group.bench_function(format!("{name}/ch_preprocessing"), |b| {
            b.iter(|| black_box(build_serial(&w.edges, ChMode::Collapsed)))
        });
        let ch = build_serial(&w.edges, ChMode::Collapsed);
        let mut engine = mmt_thorup::SerialThorup::new(&w.graph, &ch);
        let src = w.source();
        group.bench_function(format!("{name}/thorup_serial"), |b| {
            b.iter(|| black_box(engine.solve(src)))
        });
        // The concurrent solver pinned to serial config, for comparison.
        let solver = ThorupSolver::new(&w.graph, &ch).with_config(ThorupConfig::serial());
        let inst = ThorupInstance::new(&ch);
        group.bench_function(format!("{name}/thorup_atomic_1thread"), |b| {
            b.iter(|| {
                inst.reset(&ch);
                solver.solve_into(&inst, src);
            })
        });
        group.bench_function(format!("{name}/dimacs_reference"), |b| {
            b.iter(|| black_box(goldberg_sssp(&w.graph, src)))
        });
        group.bench_function(format!("{name}/dijkstra_binary_heap"), |b| {
            b.iter(|| black_box(dijkstra(&w.graph, src)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
