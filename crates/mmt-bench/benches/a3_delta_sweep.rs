//! Ablation 3 — Δ-stepping bucket-width sweep around the heuristic
//! default, establishing that the Table 5 baseline is not handicapped by a
//! bad Δ.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_baselines::{default_delta, delta_stepping, DeltaConfig};
use mmt_bench::{paper_families, scale_from_env, Workload};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a3_delta_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let fams = paper_families(scale);
    for fam in [&fams[0], &fams[4]] {
        let w = Workload::generate(fam.spec);
        let auto = default_delta(&w.graph);
        let src = w.source();
        let name = fam.spec.name();
        for (label, delta) in [
            ("auto_over_8", (auto / 8).max(1)),
            ("auto", auto),
            ("auto_times_8", auto.saturating_mul(8)),
            ("delta_1_dijkstra_mode", 1),
            ("delta_inf_bellman_mode", u64::MAX / 4),
        ] {
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| black_box(delta_stepping(&w.graph, src, DeltaConfig::new(delta))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
