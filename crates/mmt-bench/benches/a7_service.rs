//! Ablation 7 — query-service throughput: the resident worker-pool service
//! vs calling the batch engine directly, for bursts of mixed queries.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_thorup::{BatchMode, GraphRegistry, QueryEngine, QueryRequest, QueryService, ThorupSolver};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a7_service");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, scale, 8);
    let w = Workload::generate(spec);
    let graph = Arc::new(w.graph);
    let ch = Arc::new(build_parallel(&w.edges));
    let sources: Vec<u32> = {
        // regenerate sources without the moved Workload
        (0..16u32)
            .map(|i| (i * 2654435761) % graph.n() as u32)
            .collect()
    };
    let name = spec.name();

    let mut registry = GraphRegistry::new();
    registry
        .register(name.as_str(), &graph, Arc::clone(&ch))
        .expect("matching graph and hierarchy");
    let service = QueryService::builder()
        .workers(4)
        .build_registry(registry)
        .expect("registry graphs are servable");
    group.bench_function(format!("{name}/service_16_queries"), |b| {
        b.iter(|| {
            let handles: Vec<_> = sources
                .iter()
                .map(|&s| service.submit(s).unwrap())
                .collect();
            for h in handles {
                black_box(h.wait().unwrap());
            }
        })
    });

    let solver = ThorupSolver::new(&graph, &ch);
    let engine = QueryEngine::new(solver);
    group.bench_function(format!("{name}/batch_16_queries"), |b| {
        b.iter(|| black_box(engine.solve_batch(&sources, BatchMode::Simultaneous)))
    });

    group.bench_function(format!("{name}/service_targeted_burst"), |b| {
        b.iter(|| {
            let handles: Vec<_> = sources
                .iter()
                .map(|&s| {
                    service
                        .submit_p2p(QueryRequest::new(s).target((s + 1) % graph.n() as u32))
                        .unwrap()
                })
                .collect();
            for h in handles {
                black_box(h.wait().unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
