//! Table 4 — Thorup's algorithm per family at 1 and at all available
//! "processors" (the paper's running-time-and-speedup table).

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_platform::{available_threads, with_pool};
use mmt_thorup::{ThorupInstance, ThorupSolver};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let threads = available_threads();
    let mut group = c.benchmark_group("table4_thorup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let inst = ThorupInstance::new(&ch);
        let src = w.source();
        let name = fam.spec.name();
        for p in [1usize, threads] {
            group.bench_function(format!("{name}/p={p}"), |b| {
                b.iter(|| {
                    with_pool(p, || {
                        inst.reset(&ch);
                        solver.solve_into(&inst, src);
                    })
                })
            });
            if threads == 1 {
                break;
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
