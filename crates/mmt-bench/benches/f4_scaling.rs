//! Figure 4 — scaling of CH construction (top panel) and Thorup's
//! algorithm (bottom panel) with the emulated processor count. Sweeps
//! power-of-two pool sizes up to twice the hardware threads (the paper's
//! x-axis is 1..40 MTA-2 processors).

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_platform::pool::sweep_points;
use mmt_platform::{available_threads, with_pool};
use mmt_thorup::{ThorupInstance, ThorupSolver};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let points = sweep_points(available_threads().max(2) * 2);
    // The full six-family sweep is the reproduce binary's job; criterion
    // tracks the two extremes (largest uniform Random and RMAT).
    let fams = paper_families(scale);
    let picks = [&fams[0], &fams[3]];
    let mut group = c.benchmark_group("fig4_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    for fam in picks {
        let w = Workload::generate(fam.spec);
        let name = fam.spec.name();
        for &p in &points {
            group.bench_function(format!("ch/{name}/p={p}"), |b| {
                b.iter(|| with_pool(p, || black_box(build_parallel(&w.edges))))
            });
        }
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let inst = ThorupInstance::new(&ch);
        let src = w.source();
        for &p in &points {
            group.bench_function(format!("thorup/{name}/p={p}"), |b| {
                b.iter(|| {
                    with_pool(p, || {
                        inst.reset(&ch);
                        solver.solve_into(&inst, src);
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
