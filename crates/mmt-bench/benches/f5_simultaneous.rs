//! Figure 5 — k simultaneous Thorup queries sharing one CH vs k
//! *sequential* (internally parallel) Δ-stepping runs vs k sequential
//! Thorup runs, at two Random-UWD sizes. Paper shape: past a modest k the
//! shared-CH batch wins.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_baselines::{delta_stepping, DeltaConfig};
use mmt_bench::{scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_thorup::{BatchMode, QueryEngine, ThorupSolver};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("fig5_simultaneous");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(2000));
    for log_n in [scale.saturating_sub(2), scale + 1] {
        let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, log_n);
        let w = Workload::generate(spec);
        let ch = build_parallel(&w.edges);
        let engine = QueryEngine::new(ThorupSolver::new(&w.graph, &ch));
        let cfg = DeltaConfig::auto(&w.graph);
        let name = spec.name();
        for k in [1usize, 4, 16] {
            let sources = w.sources(k);
            group.bench_function(format!("{name}/k={k}/simul_thorup"), |b| {
                b.iter(|| black_box(engine.solve_batch(&sources, BatchMode::Simultaneous)))
            });
            group.bench_function(format!("{name}/k={k}/seq_thorup"), |b| {
                b.iter(|| black_box(engine.solve_batch(&sources, BatchMode::Sequential)))
            });
            group.bench_function(format!("{name}/k={k}/seq_delta"), |b| {
                b.iter(|| {
                    for &s in &sources {
                        black_box(delta_stepping(&w.graph, s, cfg));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
