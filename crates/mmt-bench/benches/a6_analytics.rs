//! Ablation 6 — the analytics workloads of the paper's introduction
//! (batch centrality on unstructured networks): shared-CH batch SSSP vs
//! running the same analytic over sequential Δ-stepping.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_analytics::{closeness_centrality, estimate_diameter};
use mmt_baselines::{delta_stepping, DeltaConfig};
use mmt_bench::{scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::INF;
use mmt_thorup::ThorupSolver;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a6_analytics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, scale, 6);
    let w = Workload::generate(spec);
    let ch = build_parallel(&w.edges);
    let solver = ThorupSolver::new(&w.graph, &ch);
    let seeds = w.sources(12);
    let name = spec.name();
    group.bench_function(format!("{name}/closeness_shared_ch"), |b| {
        b.iter(|| black_box(closeness_centrality(&solver, &seeds)))
    });
    let cfg = DeltaConfig::auto(&w.graph);
    group.bench_function(format!("{name}/closeness_seq_delta"), |b| {
        b.iter(|| {
            // The same analytic without a shared hierarchy: one
            // delta-stepping run per seed, scores computed inline.
            let scores: Vec<f64> = seeds
                .iter()
                .map(|&s| {
                    let dist = delta_stepping(&w.graph, s, cfg);
                    let reached = dist.iter().filter(|&&d| d != INF).count();
                    let sum: u64 = dist.iter().filter(|&&d| d != INF).sum();
                    if reached > 1 && sum > 0 {
                        (reached - 1) as f64 / sum as f64
                    } else {
                        0.0
                    }
                })
                .collect();
            black_box(scores)
        })
    });
    group.bench_function(format!("{name}/diameter_double_sweep"), |b| {
        b.iter(|| black_box(estimate_diameter(&solver, &seeds[..3])))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
