//! Table 5 — Δ-stepping vs Thorup vs CH construction per family. Paper
//! shape: Δ-stepping wins every single-source run; the CH costs ~2–3
//! Thorup queries to build (and then amortises over a batch — Figure 5).

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_baselines::{delta_stepping, DeltaConfig};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_thorup::{ThorupInstance, ThorupSolver};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("table5_vs_delta");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let name = fam.spec.name();
        let cfg = DeltaConfig::auto(&w.graph);
        let src = w.source();
        group.bench_function(format!("{name}/delta_stepping"), |b| {
            b.iter(|| black_box(delta_stepping(&w.graph, src, cfg)))
        });
        let ch = build_parallel(&w.edges);
        let solver = ThorupSolver::new(&w.graph, &ch);
        let inst = ThorupInstance::new(&ch);
        group.bench_function(format!("{name}/thorup"), |b| {
            b.iter(|| {
                inst.reset(&ch);
                solver.solve_into(&inst, src);
            })
        });
        group.bench_function(format!("{name}/ch_construction"), |b| {
            b.iter(|| black_box(build_parallel(&w.edges)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
