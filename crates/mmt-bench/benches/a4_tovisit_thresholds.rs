//! Ablation 4 — sweep of the selective-toVisit thresholds (the paper chose
//! its two MTA-2 thresholds "experimentally by simulating the tovisit
//! computation"; this is that experiment for the rayon port). The default
//! in `ToVisitStrategy::selective_default` should sit at or near the
//! sweep's minimum.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_thorup::{ThorupConfig, ThorupInstance, ThorupSolver, ToVisitStrategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("a4_tovisit_thresholds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    // The RMAT family with huge hubs is where the thresholds matter most.
    let fams = paper_families(scale);
    let fam = &fams[3];
    let w = Workload::generate(fam.spec);
    let ch = build_parallel(&w.edges);
    let inst = ThorupInstance::new(&ch);
    let src = w.source();
    for (label, single, multi) in [
        ("serial_only", usize::MAX, usize::MAX),
        ("single_64_multi_1k", 64, 1024),
        ("single_256_multi_16k (default)", 256, 16_384),
        ("single_1k_multi_64k", 1024, 65_536),
        ("parallel_always", 0, 0),
    ] {
        let strategy = ToVisitStrategy::Selective {
            single_par_threshold: single,
            multi_par_threshold: multi,
        };
        let solver = ThorupSolver::new(&w.graph, &ch)
            .with_config(ThorupConfig::new().with_strategy(strategy));
        group.bench_function(format!("{}/{label}", fam.spec.name()), |b| {
            b.iter(|| {
                inst.reset(&ch);
                solver.solve_into(&inst, src);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
