//! Table 3 — parallel Component Hierarchy construction per family, at 1
//! and at all available "processors" (rayon threads). On real multicore
//! hosts the ratio is the paper's speedup column; on a single core it
//! measures the parallel machinery's overhead instead.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_platform::{available_threads, with_pool};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let threads = available_threads();
    let mut group = c.benchmark_group("table3_ch_construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let name = fam.spec.name();
        for p in [1usize, threads] {
            group.bench_function(format!("{name}/p={p}"), |b| {
                b.iter(|| with_pool(p, || black_box(build_parallel(&w.edges))))
            });
            if threads == 1 {
                break;
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
