//! Table 6 — the toVisit strategy study: naive always-parallel gathers
//! ("Thorup A") vs selective parallelisation ("Thorup B"), plus the
//! fully-serial lower bound. Paper shape: B beats A by up to ~2×.

use criterion::{criterion_group, criterion_main, Criterion};
use mmt_bench::{paper_families, scale_from_env, Workload};
use mmt_ch::build_parallel;
use mmt_thorup::{ThorupConfig, ThorupInstance, ThorupSolver, ToVisitStrategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(12);
    let mut group = c.benchmark_group("table6_tovisit");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for fam in paper_families(scale) {
        let w = Workload::generate(fam.spec);
        let ch = build_parallel(&w.edges);
        let inst = ThorupInstance::new(&ch);
        let src = w.source();
        let name = fam.spec.name();
        for (label, strategy) in [
            ("thorup_a_naive", ToVisitStrategy::AlwaysParallel),
            ("thorup_b_selective", ToVisitStrategy::selective_default()),
            ("serial_gather", ToVisitStrategy::Serial),
        ] {
            let solver = ThorupSolver::new(&w.graph, &ch)
                .with_config(ThorupConfig::new().with_strategy(strategy));
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    inst.reset(&ch);
                    solver.solve_into(&inst, src);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
