//! Shiloach–Vishkin connected components (hook + shortcut on a parent
//! forest).
//!
//! Kept as the comparator the paper measures the "bully" algorithm against:
//! every hook writes to the parent entry of a *root*, so as components grow
//! the writes concentrate on ever fewer memory locations — the hot-spot
//! behaviour the paper's Section 3.1 attributes to this algorithm on the
//! MTA-2. The `a2_cc_algorithms` bench reproduces the comparison.

use crate::{Components, EdgeSet};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Computes connected components with parallel hooking onto smaller-id
/// roots followed by pointer-jumping, iterated to a fixpoint.
pub fn shiloach_vishkin(set: EdgeSet<'_>) -> Components {
    let n = set.n;
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    let mut rounds = 0usize;
    while changed.swap(false, Ordering::AcqRel) {
        rounds += 1;
        debug_assert!(rounds <= n + 1, "Shiloach-Vishkin failed to converge");
        // Hook phase: for each edge, try to attach the root of the
        // larger-label endpoint to the smaller label. The write target is
        // always a root's parent cell — the hot spot.
        set.edges.par_iter().for_each(|e| {
            if e.u == e.v {
                return;
            }
            let pu = parent[e.u as usize].load(Ordering::Relaxed);
            let pv = parent[e.v as usize].load(Ordering::Relaxed);
            if pu == pv {
                return;
            }
            let (small, large) = if pu < pv { (pu, pv) } else { (pv, pu) };
            // Only hook when `large` is currently a root; fetch_min keeps
            // concurrent hooks monotone (parent ids only decrease).
            if parent[large as usize].load(Ordering::Relaxed) == large
                && parent[large as usize].fetch_min(small, Ordering::AcqRel) > small
            {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Shortcut phase: halve tree heights.
        (0..n).into_par_iter().for_each(|v| {
            let p = parent[v].load(Ordering::Relaxed) as usize;
            let gp = parent[p].load(Ordering::Relaxed);
            if gp < parent[v].load(Ordering::Relaxed)
                && parent[v].fetch_min(gp, Ordering::AcqRel) > gp
            {
                changed.store(true, Ordering::Relaxed);
            }
        });
    }
    // Final flatten to full depth-1 stars.
    let mut labels: Vec<u32> = parent.into_iter().map(AtomicU32::into_inner).collect();
    for v in 0..n {
        let mut l = labels[v];
        while labels[l as usize] != l {
            l = labels[l as usize];
        }
        labels[v] = l;
    }
    Components::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::types::Edge;

    fn run(n: usize, pairs: &[(u32, u32)]) -> Components {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v, 1)).collect();
        shiloach_vishkin(EdgeSet { n, edges: &edges })
    }

    #[test]
    fn basic_components() {
        let c = run(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(c.count, 3);
        assert_eq!(c.labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn path_and_reversed_path() {
        for rev in [false, true] {
            let n = 2000u32;
            let pairs: Vec<(u32, u32)> = (0..n - 1)
                .map(|i| if rev { (i + 1, i) } else { (i, i + 1) })
                .collect();
            let c = run(n as usize, &pairs);
            assert_eq!(c.count, 1, "rev={rev}");
        }
    }

    #[test]
    fn star_collapses_in_one_round() {
        let pairs: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let c = run(100, &pairs);
        assert_eq!(c.count, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn agrees_with_dsu_on_random_input() {
        use crate::{connected_components, CcAlgorithm};
        let mut x = 777u64;
        let mut pairs = Vec::new();
        for _ in 0..300 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let u = (x >> 33) as u32 % 150;
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let v = (x >> 33) as u32 % 150;
            pairs.push((u, v));
        }
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v, 1)).collect();
        let set = EdgeSet {
            n: 150,
            edges: &edges,
        };
        assert_eq!(
            shiloach_vishkin(set),
            connected_components(set, CcAlgorithm::SerialDsu)
        );
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(run(0, &[]).count, 0);
        assert_eq!(run(5, &[]).count, 5);
    }
}
