//! Connected components, the MTGL operation at the heart of the paper's
//! Component Hierarchy construction.
//!
//! Three algorithms, all producing the same canonical labelling (every
//! vertex labelled by the smallest vertex id in its component):
//!
//! * [`dsu`] — serial union-find with union by rank and path halving; the
//!   correctness oracle and the engine of the serial CH builder;
//! * [`label_prop`] — parallel label propagation with pointer-jumping
//!   shortcuts; our stand-in for the MTGL "bully" algorithm, which spreads
//!   writes across the `label` array instead of funnelling every hook
//!   through a few tree roots;
//! * [`shiloach_vishkin`] — the classic hook-and-shortcut algorithm the
//!   paper calls out as suffering hot spots on the MTA-2; kept as the
//!   ablation comparator (`a2_cc_algorithms` bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent_dsu;
pub mod dsu;
pub mod label_prop;
pub mod shiloach_vishkin;
pub mod verify;

pub use concurrent_dsu::{concurrent_components, ConcurrentDsu};
pub use dsu::DisjointSets;
pub use label_prop::label_propagation;
pub use shiloach_vishkin::shiloach_vishkin;

use mmt_graph::types::{Edge, VertexId};

/// A component labelling: `labels[v]` is the canonical (smallest) vertex id
/// of `v`'s connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Canonical label per vertex.
    pub labels: Vec<VertexId>,
    /// Number of distinct components.
    pub count: usize,
}

impl Components {
    /// Builds from a raw label array, flattening one level of indirection
    /// and counting components. Labels must be root-stable after one hop
    /// (`labels[labels[v]]` is a fixpoint), which all algorithms in this
    /// crate guarantee.
    pub fn from_labels(mut labels: Vec<VertexId>) -> Self {
        for v in 0..labels.len() {
            let l = labels[v] as usize;
            labels[v] = labels[l];
            debug_assert_eq!(labels[labels[v] as usize], labels[v]);
        }
        let count = labels
            .iter()
            .enumerate()
            .filter(|&(v, &l)| v as VertexId == l)
            .count();
        Self { labels, count }
    }

    /// True if `u` and `v` are in the same component.
    #[inline]
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Number of vertices in `v`'s component (O(n) scan; used by the
    /// differential harness to cross-check SSSP reachable sets against
    /// the connected-components oracle).
    pub fn member_count(&self, v: VertexId) -> usize {
        let label = self.labels[v as usize];
        self.labels.iter().filter(|&&l| l == label).count()
    }
}

/// The edge-set view the CC algorithms consume: any slice of undirected
/// edges over `n` vertices. Weights are ignored here; the CH builder filters
/// by weight *before* calling CC, exactly like the paper's Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct EdgeSet<'a> {
    /// Vertex count.
    pub n: usize,
    /// Undirected edges.
    pub edges: &'a [Edge],
}

/// Which CC algorithm to run (for callers that switch by configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// Serial union-find.
    SerialDsu,
    /// Parallel label propagation ("bully"-style).
    LabelPropagation,
    /// Shiloach–Vishkin hook + shortcut.
    ShiloachVishkin,
    /// One-pass parallel lock-free union-find.
    ConcurrentDsu,
}

/// Runs the selected algorithm.
pub fn connected_components(set: EdgeSet<'_>, algo: CcAlgorithm) -> Components {
    match algo {
        CcAlgorithm::SerialDsu => {
            let mut dsu = DisjointSets::new(set.n);
            for e in set.edges {
                dsu.union(e.u, e.v);
            }
            dsu.into_components()
        }
        CcAlgorithm::LabelPropagation => label_propagation(set),
        CcAlgorithm::ShiloachVishkin => shiloach_vishkin(set),
        CcAlgorithm::ConcurrentDsu => concurrent_components(set),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_from_flat_labels() {
        let c = Components::from_labels(vec![0, 0, 2, 2, 2]);
        assert_eq!(c.count, 2);
        assert!(c.same(0, 1));
        assert!(c.same(3, 4));
        assert!(!c.same(1, 2));
    }

    #[test]
    fn member_count_sizes_components() {
        let c = Components::from_labels(vec![0, 0, 2, 2, 2, 5]);
        assert_eq!(c.member_count(1), 2);
        assert_eq!(c.member_count(3), 3);
        assert_eq!(c.member_count(5), 1);
    }

    #[test]
    fn all_algorithms_agree_on_a_small_graph() {
        let edges = vec![
            Edge::new(0, 1, 1),
            Edge::new(2, 3, 1),
            Edge::new(3, 4, 1),
            Edge::new(6, 6, 1),
        ];
        let set = EdgeSet {
            n: 7,
            edges: &edges,
        };
        let a = connected_components(set, CcAlgorithm::SerialDsu);
        let b = connected_components(set, CcAlgorithm::LabelPropagation);
        let c = connected_components(set, CcAlgorithm::ShiloachVishkin);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.count, 4); // {0,1}, {2,3,4}, {5}, {6}
    }
}
