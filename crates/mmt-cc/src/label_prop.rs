//! Parallel connected components by label propagation with pointer-jumping
//! shortcuts — the stand-in for the MTGL "bully" algorithm the paper uses.
//!
//! The important property (and the reason the paper prefers it to
//! Shiloach–Vishkin on the MTA-2) is the *write distribution*: updates land
//! on the `label` entry of whichever endpoint currently holds the larger
//! label, spreading contention across the whole array instead of hammering
//! a handful of tree roots. On commodity cache-coherent hardware the same
//! structure avoids ping-ponging a few hot cache lines.

use crate::{Components, EdgeSet};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Computes connected components by iterated parallel min-label hooking and
/// pointer jumping, until a fixpoint.
pub fn label_propagation(set: EdgeSet<'_>) -> Components {
    let n = set.n;
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    let mut rounds = 0usize;
    while changed.swap(false, Ordering::AcqRel) {
        rounds += 1;
        debug_assert!(rounds <= n + 1, "label propagation failed to converge");
        // Hook: push the smaller endpoint label onto the larger. fetch_min
        // keeps the pass race-free regardless of interleaving.
        set.edges.par_iter().for_each(|e| {
            let (u, v) = (e.u as usize, e.v as usize);
            if u == v {
                return;
            }
            let lu = labels[u].load(Ordering::Relaxed);
            let lv = labels[v].load(Ordering::Relaxed);
            if lu < lv {
                if labels[v].fetch_min(lu, Ordering::AcqRel) > lu {
                    changed.store(true, Ordering::Relaxed);
                }
            } else if lv < lu && labels[u].fetch_min(lv, Ordering::AcqRel) > lv {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Shortcut: pointer-jump labels to their fixpoint so the next hook
        // pass works with (near-)root labels. Each pass halves chain depth.
        loop {
            let jumped = AtomicBool::new(false);
            (0..n).into_par_iter().for_each(|v| {
                let l = labels[v].load(Ordering::Relaxed) as usize;
                let ll = labels[l].load(Ordering::Relaxed);
                if ll < labels[v].load(Ordering::Relaxed)
                    && labels[v].fetch_min(ll, Ordering::AcqRel) > ll
                {
                    jumped.store(true, Ordering::Relaxed);
                }
            });
            if !jumped.load(Ordering::Acquire) {
                break;
            }
        }
    }
    let labels = labels.into_iter().map(AtomicU32::into_inner).collect();
    Components::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::types::Edge;

    fn run(n: usize, pairs: &[(u32, u32)]) -> Components {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v, 1)).collect();
        label_propagation(EdgeSet { n, edges: &edges })
    }

    #[test]
    fn two_components() {
        let c = run(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(c.count, 3);
        assert!(c.same(0, 2));
        assert!(c.same(4, 5));
        assert!(!c.same(0, 4));
        assert_eq!(c.labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn long_path_converges() {
        let n = 5000;
        let pairs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let c = run(n, &pairs);
        assert_eq!(c.count, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn reversed_path_converges() {
        // Worst case for naive propagation: the min id sits at the far end.
        let n = 3000;
        let pairs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i + 1, i)).collect();
        let c = run(n, &pairs);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn self_loops_and_empty() {
        let c = run(3, &[(1, 1)]);
        assert_eq!(c.count, 3);
        let c = run(0, &[]);
        assert_eq!(c.count, 0);
    }

    #[test]
    fn dense_random_matches_dsu() {
        use crate::{connected_components, CcAlgorithm};
        let mut pairs = Vec::new();
        let mut x = 12345u64;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) as u32 % 200;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as u32 % 200;
            pairs.push((u, v));
        }
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v, 1)).collect();
        let set = EdgeSet {
            n: 200,
            edges: &edges,
        };
        assert_eq!(
            label_propagation(set),
            connected_components(set, CcAlgorithm::SerialDsu)
        );
    }
}
