//! Serial disjoint-set union (union by rank, path halving).
//!
//! `O(m α(m, n))`; the correctness oracle for the parallel algorithms and
//! the engine of `mmt-ch`'s serial Component Hierarchy builder, where its
//! incremental nature (keep unioning as the weight threshold doubles) is
//! exactly what Algorithm 1's phase structure needs.

use crate::Components;
use mmt_graph::types::VertexId;

/// A union-find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<VertexId>,
    rank: Vec<u8>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as VertexId).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `v` with path halving.
    pub fn find(&mut self, mut v: VertexId) -> VertexId {
        loop {
            let p = self.parent[v as usize];
            if p == v {
                return v;
            }
            let gp = self.parent[p as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
    }

    /// Unions the sets of `u` and `v`; returns `true` if they were distinct.
    pub fn union(&mut self, u: VertexId, v: VertexId) -> bool {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        self.sets -= 1;
        let (hi, lo) = if self.rank[ru as usize] >= self.rank[rv as usize] {
            (ru, rv)
        } else {
            (rv, ru)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// True if `u` and `v` share a set.
    pub fn same(&mut self, u: VertexId, v: VertexId) -> bool {
        self.find(u) == self.find(v)
    }

    /// Converts into a canonical [`Components`] labelling (labels are the
    /// minimum vertex id per set, not the internal DSU roots).
    pub fn into_components(mut self) -> Components {
        let n = self.len();
        // First map every vertex to its root, tracking the minimum id seen
        // per root, then relabel by that minimum.
        let mut min_of_root = vec![u32::MAX; n];
        let mut roots = vec![0 as VertexId; n];
        for v in 0..n as VertexId {
            let r = self.find(v);
            roots[v as usize] = r;
            if v < min_of_root[r as usize] {
                min_of_root[r as usize] = v;
            }
        }
        let labels = roots
            .iter()
            .map(|&r| min_of_root[r as usize])
            .collect::<Vec<_>>();
        Components::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_set_count() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(1, 2));
        assert_eq!(d.num_sets(), 3);
        assert!(d.same(0, 2));
        assert!(!d.same(0, 3));
    }

    #[test]
    fn self_union_is_noop() {
        let mut d = DisjointSets::new(3);
        assert!(!d.union(1, 1));
        assert_eq!(d.num_sets(), 3);
    }

    #[test]
    fn canonical_labels_are_minimum_ids() {
        let mut d = DisjointSets::new(6);
        // Union in an order that makes a high id the internal root.
        d.union(5, 4);
        d.union(4, 1);
        d.union(2, 3);
        let c = d.into_components();
        assert_eq!(c.labels, vec![0, 1, 2, 2, 1, 1]);
        assert_eq!(c.count, 3);
    }

    #[test]
    fn long_chain_flattens() {
        let mut d = DisjointSets::new(1000);
        for i in 0..999 {
            d.union(i, i + 1);
        }
        assert_eq!(d.num_sets(), 1);
        let c = d.into_components();
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_structure() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.num_sets(), 0);
        assert_eq!(d.into_components().count, 0);
    }
}
