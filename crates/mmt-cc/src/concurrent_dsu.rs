//! Lock-free concurrent union-find.
//!
//! The third parallel CC engine: edges are processed by a rayon pool, each
//! thread hooking roots with a CAS on the parent array (always larger root
//! under smaller, so parents only decrease and the structure stays
//! acyclic), with path compression folded into `find`. This is the
//! "concurrent DSU" design used by modern shared-memory CC codes
//! (Afforest-style); compared to Shiloach–Vishkin it does not iterate to a
//! fixpoint — one pass over the edges suffices — and compared to label
//! propagation it is insensitive to graph diameter.

use crate::{Components, EdgeSet};
use mmt_graph::types::VertexId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A wait-free-ish concurrent disjoint-set structure over `0..n`.
#[derive(Debug)]
pub struct ConcurrentDsu {
    parent: Vec<AtomicU32>,
}

impl ConcurrentDsu {
    /// `n` singletons.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the current root of `v`, compressing the path as it goes.
    /// Safe under concurrent unions: parents only ever decrease.
    pub fn find(&self, mut v: VertexId) -> VertexId {
        loop {
            let p = self.parent[v as usize].load(Ordering::Acquire);
            if p == v {
                return v;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Path halving: harmless if it races (monotone decrease).
                let _ = self.parent[v as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            v = gp;
        }
    }

    /// Unions the sets of `u` and `v`. Returns `true` if a merge happened
    /// in this call (under contention another thread may do the final
    /// hook; exactly one caller returns `true` per structural merge).
    pub fn union(&self, u: VertexId, v: VertexId) -> bool {
        let (mut ru, mut rv) = (self.find(u), self.find(v));
        loop {
            if ru == rv {
                return false;
            }
            // Hook the larger root under the smaller: keeps the forest
            // acyclic under arbitrary interleavings.
            let (small, large) = if ru < rv { (ru, rv) } else { (rv, ru) };
            match self.parent[large as usize].compare_exchange(
                large,
                small,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // `large` stopped being a root; re-resolve and retry.
                    ru = self.find(large);
                    rv = self.find(small);
                }
            }
        }
    }

    /// True if `u` and `v` currently share a set (exact only when no
    /// unions are concurrently in flight).
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        // Standard concurrent-same loop: re-check root stability.
        loop {
            let ru = self.find(u);
            let rv = self.find(v);
            if ru == rv {
                return true;
            }
            if self.parent[ru as usize].load(Ordering::Acquire) == ru {
                return false;
            }
        }
    }

    /// Freezes into canonical components (requires exclusive access —
    /// enforced by `self` by value).
    pub fn into_components(self) -> Components {
        let n = self.len();
        let mut labels = vec![0 as VertexId; n];
        for v in 0..n as u32 {
            labels[v as usize] = self.find(v);
        }
        // Roots chosen as minima by the hooking rule, so labels are already
        // canonical mins; flatten defensively.
        Components::from_labels(labels)
    }
}

/// One-pass parallel connected components over a concurrent DSU.
pub fn concurrent_components(set: EdgeSet<'_>) -> Components {
    let dsu = ConcurrentDsu::new(set.n);
    set.edges.par_iter().for_each(|e| {
        if e.u != e.v {
            dsu.union(e.u, e.v);
        }
    });
    dsu.into_components()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connected_components, CcAlgorithm};
    use mmt_graph::types::Edge;

    #[test]
    fn serial_usage_matches_dsu() {
        let edges: Vec<Edge> = [(0u32, 1u32), (2, 3), (3, 4), (1, 4)]
            .iter()
            .map(|&(u, v)| Edge::new(u, v, 1))
            .collect();
        let set = EdgeSet {
            n: 6,
            edges: &edges,
        };
        assert_eq!(
            concurrent_components(set),
            connected_components(set, CcAlgorithm::SerialDsu)
        );
    }

    #[test]
    fn union_reports_exactly_one_winner() {
        let dsu = ConcurrentDsu::new(2);
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| usize::from(dsu.union(0, 1))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1);
        assert!(dsu.same(0, 1));
    }

    #[test]
    fn concurrent_chain_union_is_correct() {
        let n = 10_000u32;
        let dsu = ConcurrentDsu::new(n as usize);
        std::thread::scope(|s| {
            for t in 0..4 {
                let dsu = &dsu;
                s.spawn(move || {
                    // Each thread unions a strided subset of the chain.
                    let mut i = t;
                    while i + 1 < n {
                        dsu.union(i, i + 1);
                        i += 4;
                    }
                });
            }
        });
        // All chain edges covered by the union of the four strides.
        let c = dsu.into_components();
        assert_eq!(c.count, 1);
        assert!(c.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn random_graph_matches_oracle() {
        let mut x = 99u64;
        let mut edges = Vec::new();
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (x >> 33) as u32 % 500;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (x >> 33) as u32 % 500;
            edges.push(Edge::new(u, v, 1));
        }
        let set = EdgeSet {
            n: 500,
            edges: &edges,
        };
        assert_eq!(
            concurrent_components(set),
            connected_components(set, CcAlgorithm::SerialDsu)
        );
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(concurrent_components(EdgeSet { n: 0, edges: &[] }).count, 0);
        let dsu = ConcurrentDsu::new(1);
        assert!(!dsu.is_empty());
        assert_eq!(dsu.find(0), 0);
    }
}
