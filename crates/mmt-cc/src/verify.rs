//! Verification of component labellings — used by tests and by the
//! benchmark harness's self-checks.

use crate::{Components, DisjointSets, EdgeSet};

/// Checks that `comps` is exactly the connected-component structure of
/// `set`: labels are canonical (minimum vertex id per component,
/// root-stable), every edge is monochromatic, and the partition matches an
/// independently computed union-find oracle.
pub fn verify_components(set: EdgeSet<'_>, comps: &Components) -> Result<(), String> {
    if comps.labels.len() != set.n {
        return Err(format!(
            "label array has {} entries for n={}",
            comps.labels.len(),
            set.n
        ));
    }
    for (v, &l) in comps.labels.iter().enumerate() {
        if l as usize >= set.n {
            return Err(format!("vertex {v} labelled out of range ({l})"));
        }
        if l as usize > v {
            return Err(format!(
                "vertex {v} labelled {l} > itself (labels must be min ids)"
            ));
        }
        if comps.labels[l as usize] != l {
            return Err(format!("label {l} of vertex {v} is not root-stable"));
        }
    }
    for e in set.edges {
        if !comps.same(e.u, e.v) {
            return Err(format!(
                "edge ({}, {}) spans two labelled components",
                e.u, e.v
            ));
        }
    }
    let mut dsu = DisjointSets::new(set.n);
    for e in set.edges {
        dsu.union(e.u, e.v);
    }
    let oracle = dsu.into_components();
    if oracle != *comps {
        return Err("labelling disagrees with union-find oracle".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connected_components, CcAlgorithm};
    use mmt_graph::types::Edge;

    #[test]
    fn accepts_correct_labelling() {
        let edges = vec![Edge::new(0, 1, 1), Edge::new(2, 3, 1)];
        let set = EdgeSet {
            n: 4,
            edges: &edges,
        };
        let c = connected_components(set, CcAlgorithm::LabelPropagation);
        verify_components(set, &c).unwrap();
    }

    #[test]
    fn rejects_split_component() {
        let edges = vec![Edge::new(0, 1, 1)];
        let set = EdgeSet {
            n: 2,
            edges: &edges,
        };
        let bad = Components {
            labels: vec![0, 1],
            count: 2,
        };
        assert!(verify_components(set, &bad).unwrap_err().contains("spans"));
    }

    #[test]
    fn rejects_overmerged_component() {
        let set = EdgeSet { n: 2, edges: &[] };
        let bad = Components {
            labels: vec![0, 0],
            count: 1,
        };
        assert!(verify_components(set, &bad).unwrap_err().contains("oracle"));
    }

    #[test]
    fn rejects_non_canonical_labels() {
        let edges = vec![Edge::new(0, 1, 1)];
        let set = EdgeSet {
            n: 2,
            edges: &edges,
        };
        let bad = Components {
            labels: vec![1, 1],
            count: 1,
        };
        assert!(verify_components(set, &bad).is_err());
    }

    #[test]
    fn rejects_wrong_length() {
        let set = EdgeSet { n: 3, edges: &[] };
        let bad = Components {
            labels: vec![0, 1],
            count: 2,
        };
        assert!(verify_components(set, &bad)
            .unwrap_err()
            .contains("entries"));
    }
}
