//! Property tests: all three CC algorithms compute identical, verified
//! component structures on arbitrary graphs.

use mmt_cc::verify::verify_components;
use mmt_cc::{connected_components, CcAlgorithm, EdgeSet};
use mmt_graph::types::Edge;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (usize, Vec<Edge>)> {
    (1usize..60).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_map(|(u, v)| Edge::new(u, v, 1));
        (Just(n), proptest::collection::vec(edge, 0..150))
    })
}

proptest! {
    #[test]
    fn algorithms_agree_and_verify((n, edges) in arb_graph()) {
        let set = EdgeSet { n, edges: &edges };
        let dsu = connected_components(set, CcAlgorithm::SerialDsu);
        let lp = connected_components(set, CcAlgorithm::LabelPropagation);
        let sv = connected_components(set, CcAlgorithm::ShiloachVishkin);
        let cd = connected_components(set, CcAlgorithm::ConcurrentDsu);
        prop_assert_eq!(&dsu, &lp);
        prop_assert_eq!(&dsu, &sv);
        prop_assert_eq!(&dsu, &cd);
        verify_components(set, &dsu).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn component_count_bounds((n, edges) in arb_graph()) {
        let set = EdgeSet { n, edges: &edges };
        let c = connected_components(set, CcAlgorithm::LabelPropagation);
        // Every union removes at most one component.
        prop_assert!(c.count >= n.saturating_sub(edges.len()));
        prop_assert!(c.count <= n);
    }
}
