//! Property tests: every baseline solver agrees with binary-heap Dijkstra
//! and passes the certificate checker, on arbitrary graphs and Δ values.

use mmt_baselines::{
    delta_stepping, dijkstra, goldberg_sssp, verify_sssp, verify_sssp_engine, DeltaConfig,
};
use mmt_graph::types::{Edge, EdgeList};
use mmt_graph::CsrGraph;
use proptest::prelude::*;

fn arb_graph_and_source() -> impl Strategy<Value = (EdgeList, u32)> {
    (2usize..50).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..200).prop_map(|(u, v, w)| Edge::new(u, v, w));
        (
            proptest::collection::vec(edge, 0..150).prop_map(move |edges| EdgeList { n, edges }),
            0..n as u32,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn goldberg_matches_dijkstra((el, s) in arb_graph_and_source()) {
        let g = CsrGraph::from_edge_list(&el);
        let want = dijkstra(&g, s);
        prop_assert_eq!(&goldberg_sssp(&g, s), &want);
        verify_sssp_engine("goldberg", &g, s, &want)
            .map_err(|d| TestCaseError::fail(d.to_string()))?;
    }

    #[test]
    fn delta_stepping_matches_dijkstra((el, s) in arb_graph_and_source(), delta in 1u64..64) {
        let g = CsrGraph::from_edge_list(&el);
        let want = dijkstra(&g, s);
        let got = delta_stepping(&g, s, DeltaConfig::new(delta));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn verifier_rejects_perturbations((el, s) in arb_graph_and_source(), bump in 1u64..10) {
        let g = CsrGraph::from_edge_list(&el);
        let mut d = dijkstra(&g, s);
        // Perturb the first finite non-source entry upward; the certificate
        // must fail (either a violated edge into it or lost tightness).
        if let Some(idx) = (0..d.len()).find(|&v| v as u32 != s && d[v] != u64::MAX) {
            d[idx] += bump;
            prop_assert!(verify_sssp(&g, s, &d).is_err());
        }
    }
}
