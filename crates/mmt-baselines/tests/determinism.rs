//! Cross-thread-count determinism: the parallel stepping kernels are
//! `fetch_min` fixpoints, so the distances they produce are a function of
//! the graph alone — not of the thread count, the lane count, or the
//! scatter interleaving. This pins the seeded guarantee the scaling
//! benchmark's honesty rests on: a speedup row at N threads reports the
//! *same answers* as the 1-thread row.

use mmt_baselines::{
    adaptive_delta, default_rho, delta_star_presplit, delta_stepping_presplit,
    delta_stepping_presplit_readahead, dijkstra, rho_stepping_presplit, DeltaScratch, StepScratch,
};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::Dist;
use mmt_graph::{CsrGraph, SplitCsr};
use mmt_platform::with_pool;

const SEED: u64 = 0x5354_4550; // "STEP"

fn workloads() -> Vec<CsrGraph> {
    [
        (GraphClass::Random, WeightDist::Uniform),
        (GraphClass::Rmat, WeightDist::PolyLog),
    ]
    .into_iter()
    .map(|(class, wd)| {
        let mut spec = WorkloadSpec::new(class, wd, 9, 9);
        spec.seed = SEED;
        CsrGraph::from_edge_list(&spec.generate())
    })
    .collect()
}

/// Runs every stepping kernel on `split` at the installed thread budget,
/// building the scratch *inside* the pool so lane counts follow it.
fn solve_all(g: &CsrGraph, split: &SplitCsr, sources: &[u32]) -> Vec<(&'static str, Vec<Dist>)> {
    let mut out = Vec::new();
    let mut step = StepScratch::new(split);
    let mut delta = DeltaScratch::new(split);
    for &s in sources {
        rho_stepping_presplit(split, s, default_rho(g.n()), &mut step, None);
        out.push(("rho", step.to_distances()));
        delta_star_presplit(split, s, &mut step, None);
        out.push(("delta-star", step.to_distances()));
        delta_stepping_presplit(split, s, &mut delta, None);
        out.push(("delta-presplit", delta.to_distances()));
        delta_stepping_presplit_readahead(split, s, &mut delta, None);
        out.push(("delta-presplit-ra", delta.to_distances()));
    }
    out
}

#[test]
fn same_distances_at_one_vs_n_threads() {
    for g in workloads() {
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let split = SplitCsr::new(&g, delta.max(1));
        let sources = [0u32, g.n() as u32 / 3, g.n() as u32 - 1];
        let serial = with_pool(1, || solve_all(&g, &split, &sources));
        for threads in [2usize, 4, 8] {
            let parallel = with_pool(threads, || solve_all(&g, &split, &sources));
            for ((name_a, a), (name_b, b)) in serial.iter().zip(&parallel) {
                assert_eq!(name_a, name_b);
                assert_eq!(a, b, "{name_a}: 1 thread vs {threads} threads");
            }
        }
        // And the fixpoint they all agree on is the right one.
        for (i, &s) in sources.iter().enumerate() {
            let want = dijkstra(&g, s);
            for (name, d) in &serial[i * 4..(i + 1) * 4] {
                assert_eq!(d, &want, "{name} vs oracle, source {s}");
            }
        }
    }
}
