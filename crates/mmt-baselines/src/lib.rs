//! Baseline SSSP solvers the paper measures Thorup's algorithm against.
//!
//! * [`dijkstra`] — textbook binary-heap Dijkstra with lazy deletion; the
//!   workspace's correctness oracle;
//! * [`mlb`] — a multilevel-bucket (radix-heap) monotone priority queue for
//!   integer keys;
//! * [`goldberg`] — Dijkstra driven by [`mlb`]: our stand-in for the DIMACS
//!   reference solver ("Goldberg's multilevel bucket shortest path
//!   algorithm, which has an expected running time of O(n) on random graphs
//!   with uniform weight distributions") used in the paper's Table 1;
//! * [`delta_stepping`] — the parallel Meyer–Sanders Δ-stepping of Madduri
//!   et al., the paper's parallel baseline (Tables 5–6, Figure 5);
//! * [`rho_stepping`] — ρ-stepping (Dong–Gu–Sun–Zhang) on contention-free
//!   per-thread frontier bins: each step extracts the ~ρ closest frontier
//!   vertices and relaxes all of their edges, with no shared bucket array;
//! * [`delta_star`] — Δ*-stepping from the same paper: Δ-bucketed stepping
//!   with no light/heavy split, run to an inner fixpoint per bucket, on the
//!   same thread-local bins;
//! * [`compact_delta`] — the same kernel over all-`u32` structures with
//!   checked-narrowed saturating `u32` distances (the locality option);
//! * [`relax_core`] — the shared, unrolled, read-ahead relax inner loop
//!   every stepping kernel above funnels through;
//! * [`verify`] — an oracle-free certificate checker for SSSP outputs,
//!   reporting failures as structured [`Divergence`] records;
//! * [`bellman_ford`] — serial + parallel-frontier Bellman–Ford (the
//!   un-bucketed lower baseline);
//! * [`bidirectional`] — exact point-to-point bidirectional Dijkstra (the
//!   s–t oracle for the road-network/transit examples);
//! * [`bfs`] — parallel level-synchronous BFS (hop distances,
//!   eccentricity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bellman_ford;
pub mod bfs;
pub mod bidirectional;
pub mod compact_delta;
pub mod delta_star;
pub mod delta_stepping;
pub mod dijkstra;
pub mod goldberg;
pub mod mlb;
pub mod relax_core;
pub mod rho_stepping;
pub mod verify;

pub use bellman_ford::{bellman_ford, bellman_ford_frontier};
pub use bfs::bfs;
pub use bidirectional::{bidirectional_dijkstra, bidirectional_st, BidiScratch, P2pStats};
pub use compact_delta::{delta_stepping_compact, delta_stepping_compact_presplit, CompactScratch};
pub use delta_star::{delta_star_partitioned, delta_star_presplit, delta_star_with_cancel};
pub use delta_stepping::{
    adaptive_delta, default_delta, delta_stepping, delta_stepping_counted, delta_stepping_presplit,
    delta_stepping_presplit_readahead, delta_stepping_reference, delta_stepping_reference_counted,
    delta_stepping_st, DeltaConfig, DeltaScratch,
};
pub use dijkstra::{dijkstra, dijkstra_with_parents};
pub use goldberg::goldberg_sssp;
pub use relax_core::{relax_arcs, relax_arcs_compact, RELAX_AHEAD};
pub use rho_stepping::{
    default_rho, rho_stepping_partitioned, rho_stepping_presplit, rho_stepping_with_cancel,
    StepScratch,
};
pub use verify::{verify_sssp, verify_sssp_engine, Divergence, DivergenceKind};
