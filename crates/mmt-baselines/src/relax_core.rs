//! The shared relax inner loop every stepping kernel funnels through.
//!
//! A relax phase spends its time in one tight loop: walk a vertex's
//! adjacency slice, compute `d(u) + w`, `fetch_min` the target's distance
//! slot. The loop's cost is dominated by the dependent random load of
//! `dist[target]`, so the two micro-optimisations that matter are
//!
//! * **read-ahead** — touch the distance slot the loop will `fetch_min`
//!   `AHEAD` iterations later, pulling its cache line while the current
//!   relaxation's miss is in flight. The workspace forbids `unsafe`, so
//!   this is a real (relaxed) load through [`std::hint::black_box`]
//!   rather than a prefetch intrinsic — the closest portable spelling;
//! * **unrolling** — the body is stamped out four relaxations at a time
//!   so the bounds/induction overhead amortises and the read-ahead loads
//!   from consecutive iterations overlap.
//!
//! Both are behavioural no-ops: same `fetch_min` sequence per arc, same
//! improvements, and counter accounting is untouched (`arcs_scanned`
//! counts arcs, not read-ahead touches). [`relax_arcs`] is the `u64`
//! kernel used by Δ-stepping, ρ-stepping and Δ*-stepping;
//! [`relax_arcs_compact`] is the saturating-`u32` twin used by the
//! compact kernel (see `compact_delta` for why saturation is exact).
//! `bench_layout` measures the read-ahead win/loss as the `*-ra` engine
//! rows; this module exists so the three kernels share one tuned loop
//! instead of three drifting copies.

use mmt_graph::types::{Dist, VertexId, Weight};
use mmt_platform::{AtomicMinU32, AtomicMinU64};

/// Default read-ahead depth for the stepping kernels: deep enough to
/// cover an L2 miss at typical adjacency lengths, shallow enough that
/// short slices still get some overlap. PR 8 measured 8 as the knee for
/// the Δ-stepping readahead engine; the stepping kernels inherit it.
pub const RELAX_AHEAD: usize = 8;

/// One `u64` relaxation at index `i`, with an `AHEAD`-deep read-ahead
/// touch of the distance slot a later iteration will `fetch_min`.
#[inline(always)]
fn relax_one<const AHEAD: usize>(
    dist: &[AtomicMinU64],
    du: Dist,
    ts: &[VertexId],
    ws: &[Weight],
    i: usize,
    on_improve: &mut impl FnMut(VertexId, Dist),
) {
    if AHEAD > 0 && i + AHEAD < ts.len() {
        std::hint::black_box(dist[ts[i + AHEAD] as usize].load());
    }
    let nd = du + ws[i] as Dist;
    if dist[ts[i] as usize].fetch_min(nd) {
        on_improve(ts[i], nd);
    }
}

/// Relaxes every arc `(ts[i], ws[i])` out of a vertex at distance `du`,
/// calling `on_improve(target, new_dist)` for each strict `fetch_min`
/// win. The loop is unrolled ×4 with an `AHEAD`-deep read-ahead; `AHEAD
/// = 0` compiles to the plain loop.
#[inline]
pub fn relax_arcs<const AHEAD: usize>(
    dist: &[AtomicMinU64],
    du: Dist,
    ts: &[VertexId],
    ws: &[Weight],
    mut on_improve: impl FnMut(VertexId, Dist),
) {
    debug_assert_eq!(ts.len(), ws.len());
    let len = ts.len();
    let mut i = 0;
    while i + 4 <= len {
        relax_one::<AHEAD>(dist, du, ts, ws, i, &mut on_improve);
        relax_one::<AHEAD>(dist, du, ts, ws, i + 1, &mut on_improve);
        relax_one::<AHEAD>(dist, du, ts, ws, i + 2, &mut on_improve);
        relax_one::<AHEAD>(dist, du, ts, ws, i + 3, &mut on_improve);
        i += 4;
    }
    while i < len {
        relax_one::<AHEAD>(dist, du, ts, ws, i, &mut on_improve);
        i += 1;
    }
}

/// One saturating-`u32` relaxation at index `i` (see
/// [`relax_arcs_compact`]).
#[inline(always)]
fn relax_one_compact<const AHEAD: usize>(
    dist: &[AtomicMinU32],
    du: u32,
    ts: &[VertexId],
    ws: &[Weight],
    i: usize,
    on_improve: &mut impl FnMut(VertexId, u32),
) {
    if AHEAD > 0 && i + AHEAD < ts.len() {
        std::hint::black_box(dist[ts[i + AHEAD] as usize].load());
    }
    // Saturation can only produce the compact sentinel, which `fetch_min`
    // never accepts — see the compact_delta module docs for the proof.
    let nd = du.saturating_add(ws[i]);
    if dist[ts[i] as usize].fetch_min(nd) {
        on_improve(ts[i], nd);
    }
}

/// The compact (`u32`-distance) twin of [`relax_arcs`]: same unroll and
/// read-ahead structure over an [`AtomicMinU32`] distance array, with the
/// checked-narrowing saturating add of the compact kernels.
#[inline]
pub fn relax_arcs_compact<const AHEAD: usize>(
    dist: &[AtomicMinU32],
    du: u32,
    ts: &[VertexId],
    ws: &[Weight],
    mut on_improve: impl FnMut(VertexId, u32),
) {
    debug_assert_eq!(ts.len(), ws.len());
    let len = ts.len();
    let mut i = 0;
    while i + 4 <= len {
        relax_one_compact::<AHEAD>(dist, du, ts, ws, i, &mut on_improve);
        relax_one_compact::<AHEAD>(dist, du, ts, ws, i + 1, &mut on_improve);
        relax_one_compact::<AHEAD>(dist, du, ts, ws, i + 2, &mut on_improve);
        relax_one_compact::<AHEAD>(dist, du, ts, ws, i + 3, &mut on_improve);
        i += 4;
    }
    while i < len {
        relax_one_compact::<AHEAD>(dist, du, ts, ws, i, &mut on_improve);
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::types::INF;
    use mmt_graph::COMPACT_DIST_INF;

    fn wide(vals: &[Dist]) -> Vec<AtomicMinU64> {
        vals.iter().map(|&v| AtomicMinU64::new(v)).collect()
    }

    /// The unrolled loop visits every arc exactly once, in order, and
    /// reports exactly the strict improvements — across lengths that hit
    /// the unrolled body, the scalar tail, and both.
    #[test]
    fn unroll_and_tail_cover_every_arc() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 11] {
            let ts: Vec<VertexId> = (0..len as u32).collect();
            let ws: Vec<Weight> = (0..len as u32).map(|i| i + 1).collect();
            let dist = wide(&vec![INF; len]);
            let mut improved = Vec::new();
            relax_arcs::<0>(&dist, 10, &ts, &ws, |v, nd| improved.push((v, nd)));
            let want: Vec<(VertexId, Dist)> =
                (0..len as u32).map(|i| (i, 10 + i as Dist + 1)).collect();
            assert_eq!(improved, want, "len={len}");
            for (i, d) in dist.iter().enumerate() {
                assert_eq!(d.load(), 10 + i as Dist + 1);
            }
        }
    }

    /// Read-ahead depth changes nothing observable: same winners, same
    /// final distances, at every length parity.
    #[test]
    fn readahead_is_behaviourally_inert() {
        for len in [1usize, 4, 6, 9, 16, 33] {
            let ts: Vec<VertexId> = (0..len as u32).map(|i| i % 5).collect();
            let ws: Vec<Weight> = (0..len as u32).map(|i| (i * 7) % 13 + 1).collect();
            let plain = wide(&[100; 5]);
            let ra = wide(&[100; 5]);
            let mut a = Vec::new();
            let mut b = Vec::new();
            relax_arcs::<0>(&plain, 50, &ts, &ws, |v, nd| a.push((v, nd)));
            relax_arcs::<RELAX_AHEAD>(&ra, 50, &ts, &ws, |v, nd| b.push((v, nd)));
            assert_eq!(a, b, "len={len}");
            for (p, r) in plain.iter().zip(ra.iter()) {
                assert_eq!(p.load(), r.load());
            }
        }
    }

    /// The compact loop mirrors the wide loop bit-for-bit on a certified
    /// domain, and a saturating overflow propagates only the sentinel
    /// (which fetch_min ignores).
    #[test]
    fn compact_matches_wide_and_saturates_to_sentinel() {
        let ts: Vec<VertexId> = vec![0, 1, 2, 3, 4, 1];
        let ws: Vec<Weight> = vec![3, 9, 1, 4, 7, 2];
        let w64 = wide(&[INF, INF, 5, INF, 6, INF]);
        let w32: Vec<AtomicMinU32> = [COMPACT_DIST_INF, COMPACT_DIST_INF, 5, COMPACT_DIST_INF, 6]
            .iter()
            .map(|&v| AtomicMinU32::new(v))
            .collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        relax_arcs::<RELAX_AHEAD>(&w64, 4, &ts, &ws, |v, nd| a.push((v, nd)));
        relax_arcs_compact::<RELAX_AHEAD>(&w32, 4, &ts, &ws, |v, nd| b.push((v, nd as Dist)));
        assert_eq!(a, b);
        for (x, y) in w64.iter().zip(w32.iter()) {
            let widened = if y.load() == COMPACT_DIST_INF {
                INF
            } else {
                y.load() as Dist
            };
            assert_eq!(x.load(), widened);
        }

        // Near-sentinel: the add saturates, the sentinel never wins.
        let sat: Vec<AtomicMinU32> = vec![AtomicMinU32::new(COMPACT_DIST_INF)];
        let mut wins = Vec::new();
        relax_arcs_compact::<0>(&sat, COMPACT_DIST_INF - 1, &[0], &[100], |v, nd| {
            wins.push((v, nd))
        });
        assert!(wins.is_empty(), "saturated relaxation must not improve");
        assert_eq!(sat[0].load(), COMPACT_DIST_INF);
    }
}
