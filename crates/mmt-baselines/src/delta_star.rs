//! Δ*-stepping (Dong, Gu, Sun, Zhang — arXiv:2105.06145) on the
//! contention-free frontier bins.
//!
//! Δ*-stepping keeps classic Δ-stepping's bucket order but drops the
//! light/heavy edge classification: when a bucket's vertices are
//! extracted, **all** of their edges are relaxed at once, and the bucket
//! is re-drained to a fixpoint (a vertex improved back into the current
//! bucket re-relaxes in the next inner round) before the step advances.
//! Compared to [`crate::delta_stepping_presplit`] this trades some
//! redundant heavy-edge relaxations for one phase per bucket instead of
//! two and no split adjacency walks — and, here, for the contention-free
//! substrate: the relax phase writes only the worker's own
//! [`mmt_platform::bins::BinLane`], never a shared bucket array (see
//! [`crate::rho_stepping`] for the two-phase process/merge discipline the
//! kernels share).
//!
//! Reuses [`StepScratch`] — a service can serve ρ- and Δ*-queries off the
//! same warm scratch.

use crate::relax_core::{relax_arcs, RELAX_AHEAD};
use crate::rho_stepping::StepScratch;
use mmt_graph::types::{VertexId, INF};
use mmt_graph::{ArcPartition, PartitionedCsr, SplitAdjacency};
use mmt_platform::bins::BinLane;
use mmt_platform::{AtomicMinU64, CancelToken, EventCounters};

/// Cyclic window for Δ*: a relaxation from the current bucket `b` lands
/// in `[b, b + C/Δ + 1]`, so `C/Δ + 2` distinct slots can never alias.
fn star_ring_len(split: &impl SplitAdjacency) -> usize {
    (split.max_weight() as u64 / split.delta().max(1) as u64 + 2) as usize
}

/// Δ*-stepping over a pre-split adjacency: see the module docs.
///
/// Distances are left in `scratch`; counter conventions match
/// [`crate::rho_stepping::rho_stepping_presplit`].
pub fn delta_star_presplit<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
) {
    let done = run(split, None, source, scratch, counters, None);
    debug_assert!(done, "uncancellable run cannot be cancelled");
}

/// Δ*-stepping with *owned arc partitions*: each bin lane relaxes only
/// the frontier vertices its [`ArcPartition`] lane owns (see
/// [`crate::rho_stepping::rho_stepping_partitioned`] — the kernels share
/// the ownership discipline). Distances are bit-identical to
/// [`delta_star_presplit`] at any lane count.
pub fn delta_star_partitioned<S: SplitAdjacency + Sync>(
    part: &PartitionedCsr<'_, S>,
    source: VertexId,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
) {
    let done = run(
        part.split(),
        Some(part.partition()),
        source,
        scratch,
        counters,
        None,
    );
    debug_assert!(done, "uncancellable run cannot be cancelled");
}

/// As [`delta_star_presplit`], polling `cancel` at every bucket round.
/// Returns `false` (scratch clean, distances unspecified) when the token
/// fired before the solve completed.
pub fn delta_star_with_cancel<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
    cancel: &CancelToken,
) -> bool {
    run(split, None, source, scratch, counters, Some(cancel))
}

fn run<S: SplitAdjacency + Sync>(
    split: &S,
    owner: Option<&ArcPartition>,
    source: VertexId,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
    cancel: Option<&CancelToken>,
) -> bool {
    assert!((source as usize) < split.n(), "source out of range");
    let ring = star_ring_len(split);
    scratch.reset(split, ring);
    let width = split.delta().max(1) as u64;
    let StepScratch {
        dist,
        relaxed_at,
        bins,
        frontier,
        staging,
    } = scratch;
    let dist: &[AtomicMinU64] = dist;

    dist[source as usize].store(0);
    bins.seed(0, source);
    let mut floor = 0u64;

    while let Some(bucket) = bins.vote(floor) {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            bins.clear();
            return false;
        }
        floor = bucket;

        // Inner fixpoint: relaxing all edges can improve a vertex back
        // into the *current* bucket, so re-drain until it stays empty.
        loop {
            staging.clear();
            if bins.drain_bucket(bucket, staging) == 0 {
                break;
            }
            frontier.clear();
            for &v in staging.iter() {
                let vi = v as usize;
                let d = dist[vi].load();
                if d / width == bucket && d < relaxed_at[vi] {
                    if relaxed_at[vi] == INF {
                        if let Some(ev) = counters {
                            ev.settled.bump();
                        }
                    }
                    relaxed_at[vi] = d;
                    frontier.push(v);
                }
            }
            if frontier.is_empty() {
                continue;
            }
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
                let arcs = frontier
                    .iter()
                    .map(|&v| split.degree(v) as u64)
                    .sum::<u64>();
                ev.arcs_scanned.add(arcs);
                ev.relaxations.add(arcs);
            }
            let before = bins.pending();
            let relax = |&u: &VertexId, lane: &mut BinLane| {
                let du = dist[u as usize].load();
                for (ts, ws) in [split.light(u), split.heavy(u)] {
                    relax_arcs::<RELAX_AHEAD>(dist, du, ts, ws, |v, nd| {
                        debug_assert!(nd / width < bucket + ring as u64);
                        lane.push(nd / width, v);
                    });
                }
            };
            match owner {
                None => bins.scatter(frontier, relax),
                Some(p) => bins.scatter_owned(frontier, |&u| p.owner(u), relax),
            }
            if let Some(ev) = counters {
                ev.improvements.add((bins.pending() - before) as u64);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta_stepping::adaptive_delta;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::{shapes, GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::{Dist, EdgeList};
    use mmt_graph::{CsrGraph, SplitCsr};

    fn solve(g: &CsrGraph, s: VertexId, delta: u32) -> Vec<Dist> {
        let split = SplitCsr::new(g, delta.max(1));
        let mut scratch = StepScratch::new(&split);
        delta_star_presplit(&split, s, &mut scratch, None);
        scratch.to_distances()
    }

    fn check_graph(el: &EdgeList, deltas: &[u32]) {
        let g = CsrGraph::from_edge_list(el);
        for &s in &[0u32, el.n as u32 / 2, el.n as u32 - 1] {
            let want = dijkstra(&g, s);
            for &delta in deltas {
                assert_eq!(solve(&g, s, delta), want, "delta={delta} source={s}");
            }
        }
    }

    #[test]
    fn shapes_match_dijkstra_across_delta() {
        check_graph(&shapes::path(30, 5), &[1, 5, 100]);
        check_graph(&shapes::star(20, 7), &[1, 7]);
        check_graph(&shapes::complete(12, 3), &[1, 3]);
        check_graph(&mmt_graph::gen::adversarial::zero_chain(24, 3), &[1, 2, 9]);
    }

    #[test]
    fn random_workloads_match_dijkstra() {
        for (class, wd) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Random, WeightDist::PolyLog),
            (GraphClass::Rmat, WeightDist::Uniform),
            (GraphClass::Rmat, WeightDist::PolyLog),
        ] {
            let mut spec = WorkloadSpec::new(class, wd, 8, 8);
            spec.seed = 29;
            let g = CsrGraph::from_edge_list(&spec.generate());
            let auto = adaptive_delta(&g).min(u32::MAX as u64) as u32;
            for s in [0u32, 17, 200] {
                let want = dijkstra(&g, s);
                for delta in [1u32, 16, auto] {
                    assert_eq!(solve(&g, s, delta), want, "{} delta={delta}", spec.name());
                }
            }
        }
    }

    #[test]
    fn scratch_is_shared_with_rho_stepping_across_queries() {
        use crate::rho_stepping::{default_rho, rho_stepping_presplit};
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 7, 9);
        spec.seed = 77;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let split = SplitCsr::new(&g, adaptive_delta(&g).min(u32::MAX as u64) as u32);
        let mut scratch = StepScratch::new(&split);
        let mut out = Vec::new();
        for s in [0u32, 9, 64, 9] {
            let want = dijkstra(&g, s);
            delta_star_presplit(&split, s, &mut scratch, None);
            scratch.copy_distances_into(&mut out);
            assert_eq!(out, want, "delta* source {s}");
            rho_stepping_presplit(&split, s, default_rho(g.n()), &mut scratch, None);
            scratch.copy_distances_into(&mut out);
            assert_eq!(out, want, "rho source {s}");
        }
    }

    #[test]
    fn arena_view_matches_duplicating_split() {
        use mmt_graph::CsrArena;
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        spec.seed = 43;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let arena = CsrArena::new(&g);
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let dup = SplitCsr::new(&g, delta);
        let view = arena.split(delta);
        let mut scratch = StepScratch::new(&view);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in [0u32, 17, 200] {
            delta_star_presplit(&view, s, &mut scratch, None);
            scratch.copy_distances_into(&mut a);
            delta_star_presplit(&dup, s, &mut scratch, None);
            scratch.copy_distances_into(&mut b);
            assert_eq!(a, b, "source={s}");
            assert_eq!(a, dijkstra(&g, s), "source={s}");
        }
    }

    #[test]
    fn counters_record_activity() {
        let g = CsrGraph::from_edge_list(&shapes::path(20, 3));
        let split = SplitCsr::new(&g, 6);
        let mut scratch = StepScratch::new(&split);
        let ev = EventCounters::new();
        delta_star_presplit(&split, 0, &mut scratch, Some(&ev));
        assert_eq!(scratch.to_distances(), dijkstra(&g, 0));
        assert_eq!(ev.settled.get(), 20);
        assert_eq!(ev.relaxations.get() as usize, g.num_arcs());
        assert_eq!(ev.arcs_scanned.get(), ev.relaxations.get());
        assert!(ev.bucket_expansions.get() > 0);
        assert!(ev.improvements.get() >= 19);
    }

    #[test]
    fn partitioned_matches_unpartitioned_at_every_lane_count() {
        use mmt_graph::PartitionedCsr;
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, 8, 10);
        spec.seed = 61;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let split = SplitCsr::new(&g, delta);
        let mut scratch = StepScratch::new(&split);
        for s in [0u32, 17, 200] {
            let want = dijkstra(&g, s);
            delta_star_presplit(&split, s, &mut scratch, None);
            assert_eq!(scratch.to_distances(), want, "unpartitioned source={s}");
            for lanes in [1usize, 2, 3, 8] {
                let part = PartitionedCsr::new(&split, lanes);
                delta_star_partitioned(&part, s, &mut scratch, None);
                assert_eq!(scratch.to_distances(), want, "lanes={lanes} source={s}");
            }
        }
    }

    #[test]
    fn cancellation_stops_the_solve_and_leaves_scratch_reusable() {
        let g = CsrGraph::from_edge_list(&shapes::path(50, 2));
        let split = SplitCsr::new(&g, 4);
        let mut scratch = StepScratch::new(&split);
        let token = CancelToken::new();
        token.cancel();
        assert!(!delta_star_with_cancel(
            &split,
            0,
            &mut scratch,
            None,
            &token
        ));
        assert!(delta_star_with_cancel(
            &split,
            0,
            &mut scratch,
            None,
            &CancelToken::new()
        ));
        assert_eq!(scratch.to_distances(), dijkstra(&g, 0));
    }
}
