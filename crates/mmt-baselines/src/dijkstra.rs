//! Binary-heap Dijkstra with lazy deletion — the correctness oracle every
//! other solver in the workspace is tested against.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest path distances from `source`.
///
/// Unreachable vertices get [`INF`]. Runs in `O((n + m) log n)`.
pub fn dijkstra(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    dijkstra_with_parents(g, source).0
}

/// As [`dijkstra`], also returning the shortest-path tree: `parent[v]` is
/// the predecessor of `v` on a shortest path (`parent[v] == v` for the
/// source and for unreachable vertices).
pub fn dijkstra_with_parents(g: &CsrGraph, source: VertexId) -> (Vec<Dist>, Vec<VertexId>) {
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![INF; g.n()];
    let mut parent: Vec<VertexId> = (0..g.n() as VertexId).collect();
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.edges_from(u) {
            let nd = d + w as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (dist, parent)
}

/// Reconstructs the shortest path `source -> target` from a parent array,
/// or `None` if `target` is unreachable.
pub fn extract_path(
    parent: &[VertexId],
    dist: &[Dist],
    source: VertexId,
    target: VertexId,
) -> Option<Vec<VertexId>> {
    if dist[target as usize] == INF {
        return None;
    }
    let mut path = vec![target];
    let mut v = target;
    while v != source {
        v = parent[v as usize];
        path.push(v);
        debug_assert!(path.len() <= parent.len(), "parent cycle");
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;

    #[test]
    fn path_graph_distances() {
        let g = CsrGraph::from_edge_list(&shapes::path(5, 3));
        assert_eq!(dijkstra(&g, 0), vec![0, 3, 6, 9, 12]);
        assert_eq!(dijkstra(&g, 2), vec![6, 3, 0, 3, 6]);
    }

    #[test]
    fn picks_cheaper_detour() {
        // 0 -10- 1 ; 0 -1- 2 -1- 1
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            3,
            [(0, 1, 10), (0, 2, 1), (2, 1, 1)],
        ));
        assert_eq!(dijkstra(&g, 0), vec![0, 2, 1]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 1)]));
        let d = dijkstra(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            2,
            [(0, 0, 5), (0, 1, 9), (0, 1, 4)],
        ));
        assert_eq!(dijkstra(&g, 0), vec![0, 4]);
    }

    #[test]
    fn parents_form_shortest_path() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            4,
            [(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 1)],
        ));
        let (dist, parent) = dijkstra_with_parents(&g, 0);
        let path = extract_path(&parent, &dist, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert_eq!(dist[3], 3);
        assert!(extract_path(&parent, &dist, 0, 0).unwrap() == vec![0]);
    }

    #[test]
    fn no_path_returns_none() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(3, [(0, 1, 1)]));
        let (dist, parent) = dijkstra_with_parents(&g, 0);
        assert!(extract_path(&parent, &dist, 0, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(2));
        dijkstra(&g, 5);
    }
}
