//! Bidirectional Dijkstra for point-to-point (s–t) queries.
//!
//! The paper's road-network discussion is all about s–t queries ("transit
//! nodes make subsequent s-t shortest path queries extremely fast"); this
//! is the standard exact s–t engine those schemes fall back on, the oracle
//! the `transit_precompute` example measures its tables against, and — via
//! [`bidirectional_st`] — the served `p2p-bidi` solver behind the query
//! plane's `QueryRequest::st` shape.
//!
//! # Stopping criterion
//!
//! Two Dijkstra searches grow from `s` and `t` (on our undirected graphs
//! the backward search uses the same adjacency). Let `top(f)` / `top(b)`
//! be the smallest keys in the two heaps — lower bounds on the distance of
//! any vertex either side has yet to settle — and let `best` be the
//! cheapest meeting seen so far, i.e. `min over v of df(v) + db(v)` taken
//! at relax time. The scan terminates when
//!
//! ```text
//! top(f) + top(b) ≥ best
//! ```
//!
//! *Soundness:* any s–t path not yet represented in `best` must leave the
//! settled region of each side through some unsettled vertex, so it costs
//! at least `top(f) + top(b)`; once that bound reaches `best`, no cheaper
//! path exists and `best = dist(s, t)`. *Unreachable targets:* the two
//! searches touch disjoint components, so no meeting ever happens; the
//! forward heap drains after settling all of s's component, `top(f)`
//! becomes `+∞`, the bound trivially holds, and `best` is still [`INF`] —
//! an exact proof of unreachability, not a timeout.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use mmt_platform::CancelToken;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How often [`bidirectional_st`] polls its cancel token, in settled
/// vertices. Polling is one atomic load; 64 keeps it off the profile while
/// still bounding cancel latency to a few microseconds of scan.
const CANCEL_POLL_PERIOD: u64 = 64;

/// Work counters reported by the point-to-point solvers, in the same units
/// as the full-SSSP engines' `EventCounters` (`arcs_scanned` counts edge
/// relaxation attempts, `settled` counts heap/bucket removals), so
/// `bench_road` can compare P2P scans against full SSSP on equal terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct P2pStats {
    /// Edges whose relaxation was attempted.
    pub arcs_scanned: u64,
    /// Vertices permanently settled (popped with a live key).
    pub settled: u64,
}

/// Reusable state for [`bidirectional_st`]: two distance arrays, two
/// heaps, and the touched lists that make resets `O(search)` instead of
/// `O(n)`. After the first query on a given graph size, a query performs
/// no allocation beyond heap growth.
#[derive(Debug, Default)]
pub struct BidiScratch {
    fwd: SideScratch,
    bwd: SideScratch,
}

impl BidiScratch {
    /// An empty scratch; sizes itself lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently held by both sides.
    pub fn heap_bytes(&self) -> usize {
        self.fwd.heap_bytes() + self.bwd.heap_bytes()
    }
}

/// Exact s–t distance via bidirectional Dijkstra, with reusable scratch,
/// cooperative cancellation, and work counters.
///
/// Returns `None` iff `cancel` fired before the query finished (the
/// scratch stays reusable); otherwise `Some((dist, stats))` where `dist`
/// is [`INF`] exactly when `t` is proven unreachable from `s`. See the
/// module docs for the termination proof.
pub fn bidirectional_st(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    scratch: &mut BidiScratch,
    cancel: Option<&CancelToken>,
) -> Option<(Dist, P2pStats)> {
    assert!(
        (s as usize) < g.n() && (t as usize) < g.n(),
        "endpoint out of range"
    );
    let mut stats = P2pStats::default();
    if s == t {
        return Some((0, stats));
    }
    scratch.fwd.prepare(g.n(), s);
    scratch.bwd.prepare(g.n(), t);
    let mut best = INF;
    loop {
        if stats.settled % CANCEL_POLL_PERIOD == 0 && cancel.is_some_and(|c| c.is_cancelled()) {
            return None;
        }
        // Termination: no unseen meeting can beat `best` anymore. This also
        // covers heap exhaustion — an empty side peeks as INF, the bound
        // saturates, and `best` (INF iff the components are disjoint) is
        // returned as-is.
        let bound = scratch
            .fwd
            .peek()
            .unwrap_or(INF)
            .saturating_add(scratch.bwd.peek().unwrap_or(INF));
        if bound >= best {
            break;
        }
        // Expand the side with the smaller current key (balanced growth).
        // Both peeks are Some here: one empty heap saturates the bound.
        let fwd_turn = scratch.fwd.peek().unwrap() <= scratch.bwd.peek().unwrap();
        let (side, other) = if fwd_turn {
            (&mut scratch.fwd, &mut scratch.bwd)
        } else {
            (&mut scratch.bwd, &mut scratch.fwd)
        };
        if let Some((d, u)) = side.pop() {
            stats.settled += 1;
            for (v, w) in g.edges_from(u) {
                stats.arcs_scanned += 1;
                let nd = d + w as Dist;
                let vi = v as usize;
                if nd < side.dist[vi] {
                    if side.dist[vi] == INF {
                        side.touched.push(v);
                    }
                    side.dist[vi] = nd;
                    side.heap.push(Reverse((nd, v)));
                }
                // Meeting check uses the *relaxed* value.
                let across = other.dist[vi];
                if across != INF {
                    best = best.min(side.dist[vi].saturating_add(across));
                }
            }
        }
    }
    Some((best, stats))
}

/// Exact s–t distance, or [`INF`] when `t` is unreachable from `s`.
///
/// One-shot convenience over [`bidirectional_st`]: allocates a fresh
/// [`BidiScratch`] per call and runs without cancellation. Repeated
/// queries should hold a scratch and call [`bidirectional_st`] directly.
pub fn bidirectional_dijkstra(g: &CsrGraph, s: VertexId, t: VertexId) -> Dist {
    let mut scratch = BidiScratch::new();
    bidirectional_st(g, s, t, &mut scratch, None)
        .expect("uncancellable query cannot be interrupted")
        .0
}

#[derive(Debug, Default)]
struct SideScratch {
    dist: Vec<Dist>,
    heap: BinaryHeap<Reverse<(Dist, VertexId)>>,
    /// Vertices whose `dist` slot left INF this query; resetting clears
    /// only these, so back-to-back small queries never pay `O(n)`.
    touched: Vec<VertexId>,
}

impl SideScratch {
    fn prepare(&mut self, n: usize, origin: VertexId) {
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INF);
        } else {
            for &v in &self.touched {
                self.dist[v as usize] = INF;
            }
        }
        self.touched.clear();
        self.heap.clear();
        self.dist[origin as usize] = 0;
        self.touched.push(origin);
        self.heap.push(Reverse((0, origin)));
    }

    fn peek(&mut self) -> Option<Dist> {
        // Drop stale entries first so peek is a true lower bound.
        while let Some(&Reverse((d, u))) = self.heap.peek() {
            if d > self.dist[u as usize] {
                self.heap.pop();
            } else {
                return Some(d);
            }
        }
        None
    }

    fn pop(&mut self) -> Option<(Dist, VertexId)> {
        self.peek()?;
        self.heap.pop().map(|Reverse((d, u))| (d, u))
    }

    fn heap_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<Dist>()
            + self.heap.capacity() * std::mem::size_of::<Reverse<(Dist, VertexId)>>()
            + self.touched.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    #[test]
    fn matches_dijkstra_on_figure_one() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let d0 = dijkstra(&g, 0);
        for t in 0..6u32 {
            assert_eq!(bidirectional_dijkstra(&g, 0, t), d0[t as usize], "t={t}");
        }
    }

    #[test]
    fn matches_dijkstra_on_grids_and_random() {
        for spec in [
            WorkloadSpec::new(GraphClass::Grid, WeightDist::Uniform, 8, 6),
            WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 8),
            WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 6),
            WorkloadSpec::new(GraphClass::Road, WeightDist::Uniform, 8, 6),
        ] {
            let g = CsrGraph::from_edge_list(&spec.generate());
            let d17 = dijkstra(&g, 17);
            for t in [0u32, 1, 55, 200, 255] {
                assert_eq!(
                    bidirectional_dijkstra(&g, 17, t),
                    d17[t as usize],
                    "{} t={t}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn same_endpoint_is_zero() {
        let g = CsrGraph::from_edge_list(&shapes::path(4, 5));
        assert_eq!(bidirectional_dijkstra(&g, 2, 2), 0);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 1), (2, 3, 1)]));
        assert_eq!(bidirectional_dijkstra(&g, 0, 3), INF);
    }

    #[test]
    fn scratch_reuse_across_queries_and_sizes_stays_exact() {
        let mut scratch = BidiScratch::new();
        let small = CsrGraph::from_edge_list(&shapes::figure_one());
        let spec = WorkloadSpec::new(GraphClass::Road, WeightDist::Uniform, 8, 6);
        let big = CsrGraph::from_edge_list(&spec.generate());
        let d_small = dijkstra(&small, 0);
        let d_big = dijkstra(&big, 3);
        // Interleave sizes so both the touched-list sparse reset and the
        // size-change full reset are exercised.
        for round in 0..3 {
            for t in 0..small.n() as u32 {
                let (d, _) = bidirectional_st(&small, 0, t, &mut scratch, None).unwrap();
                assert_eq!(d, d_small[t as usize], "round {round} small t={t}");
            }
            for t in [0u32, 77, 140, 255] {
                let (d, _) = bidirectional_st(&big, 3, t, &mut scratch, None).unwrap();
                assert_eq!(d, d_big[t as usize], "round {round} big t={t}");
            }
        }
    }

    #[test]
    fn pre_cancelled_token_interrupts_the_query() {
        let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 6);
        let g = CsrGraph::from_edge_list(&spec.generate());
        let token = CancelToken::new();
        token.cancel();
        let mut scratch = BidiScratch::new();
        assert_eq!(
            bidirectional_st(&g, 0, 200, &mut scratch, Some(&token)),
            None
        );
        // The scratch survives the interruption and answers exactly after.
        let (d, _) = bidirectional_st(&g, 0, 200, &mut scratch, None).unwrap();
        assert_eq!(d, dijkstra(&g, 0)[200]);
    }

    #[test]
    fn near_queries_scan_fewer_arcs_than_a_full_sssp_would() {
        // On a road-like graph, an s–t query between grid neighbours must
        // settle far fewer vertices than the graph has — the whole point of
        // stopping early.
        let spec = WorkloadSpec::new(GraphClass::Road, WeightDist::Uniform, 10, 6);
        let g = CsrGraph::from_edge_list(&spec.generate());
        let mut scratch = BidiScratch::new();
        let (_, stats) = bidirectional_st(&g, 0, 1, &mut scratch, None).unwrap();
        assert!(
            stats.settled < g.n() as u64 / 2,
            "adjacent query settled {} of {} vertices",
            stats.settled,
            g.n()
        );
        assert!(stats.arcs_scanned < g.num_arcs() as u64 / 2);
        assert!(stats.arcs_scanned > 0 && stats.settled > 0);
    }
}
