//! Bidirectional Dijkstra for point-to-point (s–t) queries.
//!
//! The paper's road-network discussion is all about s–t queries ("transit
//! nodes make subsequent s-t shortest path queries extremely fast"); this
//! is the standard exact s–t engine those schemes fall back on, and the
//! oracle the `transit_precompute` example measures its tables against.
//! On undirected graphs the two searches are symmetric; the scan
//! terminates once `top(forward) + top(backward) ≥ best meeting point`.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact s–t distance, or [`INF`] when `t` is unreachable from `s`.
pub fn bidirectional_dijkstra(g: &CsrGraph, s: VertexId, t: VertexId) -> Dist {
    assert!(
        (s as usize) < g.n() && (t as usize) < g.n(),
        "endpoint out of range"
    );
    if s == t {
        return 0;
    }
    let mut side = [SearchSide::new(g.n(), s), SearchSide::new(g.n(), t)];
    let mut best = INF;
    loop {
        // Expand the side with the smaller current key (balanced growth).
        let (a, b) = match (side[0].peek(), side[1].peek()) {
            (None, None) => break,
            (Some(_), None) => (0, 1),
            (None, Some(_)) => (1, 0),
            (Some(x), Some(y)) => {
                if x <= y {
                    (0, 1)
                } else {
                    (1, 0)
                }
            }
        };
        // Termination: no meeting point can beat `best` anymore.
        let bound = side[0]
            .peek()
            .unwrap_or(INF)
            .saturating_add(side[1].peek().unwrap_or(INF));
        if bound >= best {
            break;
        }
        let (fwd, bwd) = if a == 0 {
            let (x, y) = side.split_at_mut(1);
            (&mut x[0], &mut y[0])
        } else {
            let (x, y) = side.split_at_mut(1);
            (&mut y[0], &mut x[0])
        };
        if let Some((d, u)) = fwd.pop() {
            for (v, w) in g.edges_from(u) {
                let nd = d + w as Dist;
                if nd < fwd.dist[v as usize] {
                    fwd.dist[v as usize] = nd;
                    fwd.heap.push(Reverse((nd, v)));
                }
                // Meeting check uses the *relaxed* value.
                let other = bwd.dist[v as usize];
                if other != INF {
                    best = best.min(fwd.dist[v as usize].saturating_add(other));
                }
            }
        }
        let _ = b;
    }
    best
}

struct SearchSide {
    dist: Vec<Dist>,
    heap: BinaryHeap<Reverse<(Dist, VertexId)>>,
}

impl SearchSide {
    fn new(n: usize, origin: VertexId) -> Self {
        let mut dist = vec![INF; n];
        dist[origin as usize] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0, origin)));
        Self { dist, heap }
    }

    fn peek(&mut self) -> Option<Dist> {
        // Drop stale entries first so peek is a true lower bound.
        while let Some(&Reverse((d, u))) = self.heap.peek() {
            if d > self.dist[u as usize] {
                self.heap.pop();
            } else {
                return Some(d);
            }
        }
        None
    }

    fn pop(&mut self) -> Option<(Dist, VertexId)> {
        self.peek()?;
        self.heap.pop().map(|Reverse((d, u))| (d, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    #[test]
    fn matches_dijkstra_on_figure_one() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let d0 = dijkstra(&g, 0);
        for t in 0..6u32 {
            assert_eq!(bidirectional_dijkstra(&g, 0, t), d0[t as usize], "t={t}");
        }
    }

    #[test]
    fn matches_dijkstra_on_grids_and_random() {
        for spec in [
            WorkloadSpec::new(GraphClass::Grid, WeightDist::Uniform, 8, 6),
            WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 8),
            WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 6),
        ] {
            let g = CsrGraph::from_edge_list(&spec.generate());
            let d17 = dijkstra(&g, 17);
            for t in [0u32, 1, 55, 200, 255] {
                assert_eq!(
                    bidirectional_dijkstra(&g, 17, t),
                    d17[t as usize],
                    "{} t={t}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn same_endpoint_is_zero() {
        let g = CsrGraph::from_edge_list(&shapes::path(4, 5));
        assert_eq!(bidirectional_dijkstra(&g, 2, 2), 0);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 1), (2, 3, 1)]));
        assert_eq!(bidirectional_dijkstra(&g, 0, 3), INF);
    }
}
