//! ρ-stepping (Dong, Gu, Sun, Zhang — arXiv:2105.06145) on the
//! contention-free frontier bins.
//!
//! Where Δ-stepping processes one distance-width bucket at a time,
//! ρ-stepping extracts (approximately) the ρ *closest* frontier vertices
//! per step and relaxes **all** of their edges — no light/heavy phase
//! split. The stepping framework's correctness argument makes any
//! extraction policy sound: a vertex whose tentative distance improves is
//! re-inserted into the frontier, so the relax loop is a monotone
//! `fetch_min` fixpoint that converges to the exact distances regardless
//! of how aggressively vertices were extracted early (and regardless of
//! thread count — the same property the cross-thread determinism test
//! pins down).
//!
//! The implementation trick is the one the shared-bucket kernels in this
//! workspace never used (GARDENIA's OpenMP Δ-stepping): each worker owns
//! a private set of bucket bins ([`mmt_platform::bins::FrontierBins`])
//! and inserts improved vertices directly into *its own* bins keyed by
//! `dist / Δ` — the relax phase performs no shared-structure write other
//! than the `fetch_min` on the distance array itself. A serial merge
//! phase then votes the next bucket (min over per-lane minima), drains
//! it from every lane with generation-stamped dedup, filters stale
//! entries by distance, and the cycle repeats. Two phases, zero bucket
//! contention.
//!
//! [`StepScratch`] carries everything across queries (distances, the
//! `relaxed_at` re-relax guard, the bins, frontier staging), so after
//! warm-up a query allocates nothing. The same scratch drives the
//! Δ*-stepping kernel in [`crate::delta_star`].

use crate::relax_core::{relax_arcs, RELAX_AHEAD};
use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::{ArcPartition, PartitionedCsr, SplitAdjacency};
use mmt_platform::bins::{BinLane, FrontierBins};
use mmt_platform::{AtomicMinU64, CancelToken, EventCounters};

/// Default extraction target: large enough that a step saturates the
/// pool on the workloads this repo runs, small enough that distance
/// ordering still prunes most re-relaxations (the paper tunes ρ per
/// machine; `n/16` tracks graph size the way its large-graph settings
/// do).
pub fn default_rho(n: usize) -> usize {
    (n / 16).max(32)
}

/// Reusable per-query state for the stepping kernels (ρ and Δ*): the
/// tentative-distance array, the last-relaxed guard, the per-thread
/// frontier bins, and the merge staging buffers. Everything retains
/// capacity across queries; after the first (warm-up) query a solve
/// performs zero heap allocations.
#[derive(Debug)]
pub struct StepScratch {
    pub(crate) dist: Vec<AtomicMinU64>,
    /// Distance at which each vertex was last relaxed this query (`INF` =
    /// never): a vertex re-relaxes only after a strict improvement.
    pub(crate) relaxed_at: Vec<Dist>,
    pub(crate) bins: FrontierBins,
    pub(crate) frontier: Vec<VertexId>,
    pub(crate) staging: Vec<VertexId>,
}

impl StepScratch {
    /// Scratch sized for `split`. Lane count follows the *installed*
    /// rayon budget (`rayon::current_num_threads()`), so a scratch built
    /// inside [`mmt_platform::with_pool`] gets one lane per pool worker.
    pub fn new(split: &impl SplitAdjacency) -> Self {
        let n = split.n();
        Self {
            dist: (0..n).map(|_| AtomicMinU64::new(INF)).collect(),
            relaxed_at: vec![INF; n],
            bins: FrontierBins::new(rayon::current_num_threads(), rho_ring_len(split), n),
            frontier: Vec::new(),
            staging: Vec::new(),
        }
    }

    /// Prepares for a query over `split` with a `ring` bins per lane:
    /// grows to its dimensions if needed (retaining capacity otherwise)
    /// and resets per-query state.
    pub(crate) fn reset(&mut self, split: &impl SplitAdjacency, ring: usize) {
        let n = split.n();
        if self.dist.len() != n {
            self.dist.resize_with(n, || AtomicMinU64::new(INF));
            self.relaxed_at.resize(n, INF);
        }
        for d in &self.dist {
            d.store(INF);
        }
        self.relaxed_at.fill(INF);
        self.bins.reset(ring, n);
    }

    /// The distance to `v` computed by the last query.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Dist {
        self.dist[v as usize].load()
    }

    /// Copies the last query's distances into `out` (cleared first). Does
    /// not allocate when `out` already has the capacity.
    pub fn copy_distances_into(&self, out: &mut Vec<Dist>) {
        out.clear();
        out.extend(self.dist.iter().map(|d| d.load()));
    }

    /// The last query's distances as a fresh vector.
    pub fn to_distances(&self) -> Vec<Dist> {
        self.dist.iter().map(|d| d.load()).collect()
    }

    /// Heap bytes currently held (distances, guard, bins, staging).
    pub fn heap_bytes(&self) -> usize {
        use mmt_platform::MemFootprint;
        self.dist.capacity() * std::mem::size_of::<AtomicMinU64>()
            + self.relaxed_at.heap_bytes()
            + self.bins.heap_bytes()
            + self.frontier.capacity() * std::mem::size_of::<VertexId>()
            + self.staging.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// Cyclic window length for ρ-stepping over `split`: twice the Δ-stepping
/// ring (`C/Δ + 2`). The extra half is the *extraction span* budget — a
/// step may pull buckets from up to `C/Δ + 2` above the current minimum
/// while chasing ρ vertices, and every push from those vertices still
/// lands inside the window (see [`rho_stepping_presplit`]).
pub(crate) fn rho_ring_len(split: &impl SplitAdjacency) -> usize {
    2 * (split.max_weight() as u64 / split.delta().max(1) as u64 + 2) as usize
}

/// ρ-stepping over a pre-split adjacency: see the module docs.
///
/// Distances are left in `scratch` (see [`StepScratch::distance`] /
/// [`StepScratch::copy_distances_into`]) so steady-state callers decide
/// where the output goes without a forced allocation. Counter
/// conventions match [`crate::delta_stepping_presplit`]: `relaxations` =
/// `arcs_scanned` = edges walked, `settled` = distinct vertices
/// activated, `bucket_expansions` = parallel relax steps,
/// `improvements` = successful `fetch_min` insertions.
pub fn rho_stepping_presplit<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    rho: usize,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
) {
    let done = run(split, None, source, rho, scratch, counters, None);
    debug_assert!(done, "uncancellable run cannot be cancelled");
}

/// ρ-stepping with *owned arc partitions*: each bin lane relaxes only the
/// frontier vertices (hence the contiguous CSR arc ranges) its
/// [`ArcPartition`] lane owns, so a worker's adjacency reads stream
/// through the same arc pages step after step instead of racing the whole
/// frontier. Ownership changes where arcs are relaxed, never whether:
/// distance writes still go through the shared `fetch_min` fixpoint, so
/// the distances are bit-identical to [`rho_stepping_presplit`] at any
/// lane count (the determinism tests pin this down).
pub fn rho_stepping_partitioned<S: SplitAdjacency + Sync>(
    part: &PartitionedCsr<'_, S>,
    source: VertexId,
    rho: usize,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
) {
    let done = run(
        part.split(),
        Some(part.partition()),
        source,
        rho,
        scratch,
        counters,
        None,
    );
    debug_assert!(done, "uncancellable run cannot be cancelled");
}

/// As [`rho_stepping_presplit`], polling `cancel` at every step boundary.
/// Returns `false` (with the scratch left clean but the distances
/// unspecified) when the token fired before the solve completed.
pub fn rho_stepping_with_cancel<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    rho: usize,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
    cancel: &CancelToken,
) -> bool {
    run(split, None, source, rho, scratch, counters, Some(cancel))
}

fn run<S: SplitAdjacency + Sync>(
    split: &S,
    owner: Option<&ArcPartition>,
    source: VertexId,
    rho: usize,
    scratch: &mut StepScratch,
    counters: Option<&EventCounters>,
    cancel: Option<&CancelToken>,
) -> bool {
    assert!((source as usize) < split.n(), "source out of range");
    let ring = rho_ring_len(split);
    scratch.reset(split, ring);
    let rho = rho.max(1);
    let width = split.delta().max(1) as u64;
    // Extraction may span this many buckets above the step's minimum; the
    // other `C/Δ + 2` half of the ring absorbs the pushes they generate.
    let span = (ring / 2) as u64;
    let StepScratch {
        dist,
        relaxed_at,
        bins,
        frontier,
        staging,
    } = scratch;
    let dist: &[AtomicMinU64] = dist;

    dist[source as usize].store(0);
    bins.seed(0, source);
    let mut floor = 0u64;

    while let Some(first) = bins.vote(floor) {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            bins.clear();
            return false;
        }
        floor = first;

        // Merge phase (serial): pull whole buckets in ascending order
        // until ~ρ vertices are collected, filtering stale entries (the
        // vertex migrated to a lower bucket) and unimproved re-entries.
        frontier.clear();
        let mut bucket = first;
        loop {
            staging.clear();
            bins.drain_bucket(bucket, staging);
            for &v in staging.iter() {
                let vi = v as usize;
                let d = dist[vi].load();
                if d / width == bucket && d < relaxed_at[vi] {
                    if relaxed_at[vi] == INF {
                        if let Some(ev) = counters {
                            ev.settled.bump();
                        }
                    }
                    relaxed_at[vi] = d;
                    frontier.push(v);
                }
            }
            if frontier.len() >= rho {
                break;
            }
            match bins.vote(bucket) {
                // The span cap keeps every push from this step inside the
                // cyclic window; stopping short of ρ is just a different
                // (equally correct) extraction policy.
                Some(b) if b - first < span => bucket = b,
                _ => break,
            }
        }
        if frontier.is_empty() {
            continue;
        }

        // Process phase (parallel): relax ALL edges of every extracted
        // vertex; improved targets go into the worker's own bins only.
        if let Some(ev) = counters {
            ev.bucket_expansions.bump();
            let arcs = frontier
                .iter()
                .map(|&v| split.degree(v) as u64)
                .sum::<u64>();
            ev.arcs_scanned.add(arcs);
            ev.relaxations.add(arcs);
        }
        let before = bins.pending();
        let relax = |&u: &VertexId, lane: &mut BinLane| {
            let du = dist[u as usize].load();
            for (ts, ws) in [split.light(u), split.heavy(u)] {
                relax_arcs::<RELAX_AHEAD>(dist, du, ts, ws, |v, nd| {
                    debug_assert!(nd / width < first + ring as u64);
                    lane.push(nd / width, v);
                });
            }
        };
        match owner {
            None => bins.scatter(frontier, relax),
            Some(p) => bins.scatter_owned(frontier, |&u| p.owner(u), relax),
        }
        if let Some(ev) = counters {
            ev.improvements.add((bins.pending() - before) as u64);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta_stepping::adaptive_delta;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::{shapes, GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;
    use mmt_graph::{CsrGraph, SplitCsr};

    fn solve(g: &CsrGraph, s: VertexId, delta: u32, rho: usize) -> Vec<Dist> {
        let split = SplitCsr::new(g, delta.max(1));
        let mut scratch = StepScratch::new(&split);
        rho_stepping_presplit(&split, s, rho, &mut scratch, None);
        scratch.to_distances()
    }

    fn check_graph(el: &EdgeList, deltas: &[u32], rhos: &[usize]) {
        let g = CsrGraph::from_edge_list(el);
        for &s in &[0u32, el.n as u32 / 2, el.n as u32 - 1] {
            let want = dijkstra(&g, s);
            for &delta in deltas {
                for &rho in rhos {
                    assert_eq!(
                        solve(&g, s, delta, rho),
                        want,
                        "delta={delta} rho={rho} source={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn shapes_match_dijkstra_across_rho() {
        check_graph(&shapes::path(30, 5), &[1, 5, 100], &[1, 4, 1000]);
        check_graph(&shapes::star(20, 7), &[1, 7], &[2, 64]);
        check_graph(&shapes::complete(12, 3), &[1, 3], &[1, 3, 12]);
    }

    #[test]
    fn random_workloads_match_dijkstra() {
        for (class, wd) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Random, WeightDist::PolyLog),
            (GraphClass::Rmat, WeightDist::Uniform),
            (GraphClass::Rmat, WeightDist::PolyLog),
        ] {
            let mut spec = WorkloadSpec::new(class, wd, 8, 8);
            spec.seed = 23;
            let g = CsrGraph::from_edge_list(&spec.generate());
            let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
            for s in [0u32, 17, 200] {
                let want = dijkstra(&g, s);
                for rho in [1usize, 32, default_rho(g.n()), usize::MAX / 2] {
                    assert_eq!(solve(&g, s, delta, rho), want, "{} rho={rho}", spec.name());
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_queries_and_graphs() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 7, 9);
        spec.seed = 99;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let split = SplitCsr::new(&g, adaptive_delta(&g).min(u32::MAX as u64) as u32);
        let mut scratch = StepScratch::new(&split);
        let rho = default_rho(g.n());
        let mut out = Vec::new();
        for s in [0u32, 3, 50, 100, 3, 0] {
            rho_stepping_presplit(&split, s, rho, &mut scratch, None);
            scratch.copy_distances_into(&mut out);
            assert_eq!(out, dijkstra(&g, s), "source {s}");
        }
        // The same scratch survives a move to a differently-sized split.
        let small = CsrGraph::from_edge_list(&shapes::path(5, 2));
        let small_split = SplitCsr::new(&small, 2);
        rho_stepping_presplit(&small_split, 0, rho, &mut scratch, None);
        scratch.copy_distances_into(&mut out);
        assert_eq!(out, dijkstra(&small, 0));
    }

    #[test]
    fn arena_view_matches_duplicating_split() {
        use mmt_graph::CsrArena;
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        spec.seed = 41;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let arena = CsrArena::new(&g);
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let dup = SplitCsr::new(&g, delta);
        let view = arena.split(delta);
        let mut scratch = StepScratch::new(&view);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in [0u32, 17, 200] {
            rho_stepping_presplit(&view, s, 64, &mut scratch, None);
            scratch.copy_distances_into(&mut a);
            rho_stepping_presplit(&dup, s, 64, &mut scratch, None);
            scratch.copy_distances_into(&mut b);
            assert_eq!(a, b, "source={s}");
            assert_eq!(a, dijkstra(&g, s), "source={s}");
        }
    }

    #[test]
    fn disconnected_self_loops_and_zero_weights() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 6)]));
        assert_eq!(solve(&g, 0, 3, 8), vec![0, 6, INF, INF]);
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            2,
            [(0, 0, 4), (0, 1, 9), (0, 1, 2)],
        ));
        assert_eq!(solve(&g, 0, 4, 8), vec![0, 2]);
        let g = CsrGraph::from_edge_list(&mmt_graph::gen::adversarial::zero_chain(24, 3));
        assert_eq!(solve(&g, 0, 2, 4), dijkstra(&g, 0));
    }

    #[test]
    fn counters_record_activity_and_each_arc_once_on_a_path() {
        // On a path every vertex settles at its final distance the first
        // time it is extracted, so each arc relaxes exactly once.
        let g = CsrGraph::from_edge_list(&shapes::path(20, 3));
        let split = SplitCsr::new(&g, 6);
        let mut scratch = StepScratch::new(&split);
        let ev = EventCounters::new();
        rho_stepping_presplit(&split, 0, 4, &mut scratch, Some(&ev));
        assert_eq!(scratch.to_distances(), dijkstra(&g, 0));
        assert_eq!(ev.settled.get(), 20);
        assert_eq!(ev.relaxations.get() as usize, g.num_arcs());
        assert_eq!(ev.arcs_scanned.get(), ev.relaxations.get());
        assert!(ev.bucket_expansions.get() > 0);
        assert!(ev.improvements.get() >= 19);
    }

    #[test]
    fn partitioned_matches_unpartitioned_at_every_lane_count() {
        use mmt_graph::PartitionedCsr;
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        spec.seed = 51;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let split = SplitCsr::new(&g, delta);
        let mut scratch = StepScratch::new(&split);
        for s in [0u32, 17, 200] {
            let want = dijkstra(&g, s);
            rho_stepping_presplit(&split, s, 64, &mut scratch, None);
            assert_eq!(scratch.to_distances(), want, "unpartitioned source={s}");
            for lanes in [1usize, 2, 3, 8] {
                let part = PartitionedCsr::new(&split, lanes);
                rho_stepping_partitioned(&part, s, 64, &mut scratch, None);
                assert_eq!(scratch.to_distances(), want, "lanes={lanes} source={s}");
            }
        }
    }

    /// The tentpole determinism law: the same seeded workload solved at 1,
    /// 2 and 4 threads, under every pinning policy, with the partition
    /// aligned to the pool, yields bit-identical distances — ownership and
    /// pinning change where work runs, never what the fixpoint converges
    /// to.
    #[test]
    fn distances_identical_across_threads_pins_and_partitions() {
        use mmt_graph::PartitionedCsr;
        use mmt_platform::{with_pinned_pool, PinPolicy};
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 8, 9);
        spec.seed = 2007;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let want = dijkstra(&g, 7);
        for pin in [PinPolicy::None, PinPolicy::Compact, PinPolicy::Spread] {
            for threads in [1usize, 2, 4] {
                let got = with_pinned_pool(threads, pin, || {
                    let split = SplitCsr::new(&g, delta);
                    let mut scratch = StepScratch::new(&split);
                    let part = PartitionedCsr::new(&split, threads);
                    rho_stepping_partitioned(&part, 7, 64, &mut scratch, None);
                    scratch.to_distances()
                });
                assert_eq!(got, want, "pin={pin:?} threads={threads}");
            }
        }
    }

    #[test]
    fn cancellation_stops_the_solve_and_leaves_scratch_reusable() {
        let g = CsrGraph::from_edge_list(&shapes::path(50, 2));
        let split = SplitCsr::new(&g, 4);
        let mut scratch = StepScratch::new(&split);
        let token = CancelToken::new();
        token.cancel();
        assert!(!rho_stepping_with_cancel(
            &split,
            0,
            8,
            &mut scratch,
            None,
            &token
        ));
        // A fresh token completes, on the same scratch.
        assert!(rho_stepping_with_cancel(
            &split,
            0,
            8,
            &mut scratch,
            None,
            &CancelToken::new()
        ));
        assert_eq!(scratch.to_distances(), dijkstra(&g, 0));
    }
}
