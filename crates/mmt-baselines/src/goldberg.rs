//! Dijkstra over multilevel buckets — the stand-in for the DIMACS reference
//! solver of the paper's Table 1.
//!
//! The paper compares serial Thorup against "the DIMACS reference solver,
//! an implementation of Goldberg's multilevel bucket shortest path
//! algorithm, which has an expected running time of O(n) on random graphs
//! with uniform weight distributions". This module drives the
//! [`crate::mlb`] queue with lazy decrease-key; the `t1_sequential` bench
//! reproduces the comparison.

use crate::mlb::MultiLevelBuckets;
use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;

/// Single-source shortest paths via multilevel buckets.
pub fn goldberg_sssp(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![INF; g.n()];
    let mut settled = vec![false; g.n()];
    let mut q: MultiLevelBuckets<VertexId> = MultiLevelBuckets::new();
    dist[source as usize] = 0;
    q.push(0, source);
    while let Some((d, u)) = q.pop_min() {
        if settled[u as usize] {
            continue; // stale (lazy decrease-key)
        }
        debug_assert_eq!(d, dist[u as usize]);
        settled[u as usize] = true;
        for (v, w) in g.edges_from(u) {
            let nd = d + w as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                q.push(nd, v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    #[test]
    fn simple_path() {
        let g = CsrGraph::from_edge_list(&shapes::path(6, 2));
        assert_eq!(goldberg_sssp(&g, 0), vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn unreachable_and_loops() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 0, 9), (0, 1, 3)]));
        let d = goldberg_sssp(&g, 0);
        assert_eq!(d, vec![0, 3, INF, INF]);
    }

    #[test]
    fn matches_dijkstra_on_workloads() {
        for (class, dist) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Random, WeightDist::PolyLog),
            (GraphClass::Rmat, WeightDist::Uniform),
        ] {
            let mut spec = WorkloadSpec::new(class, dist, 9, 10);
            spec.seed = 17;
            let g = CsrGraph::from_edge_list(&spec.generate());
            for s in [0u32, 5, 100] {
                assert_eq!(
                    goldberg_sssp(&g, s),
                    dijkstra(&g, s),
                    "{} source {s}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn large_weights_do_not_overflow() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            3,
            [(0, 1, u32::MAX), (1, 2, u32::MAX)],
        ));
        let d = goldberg_sssp(&g, 0);
        assert_eq!(d[2], 2 * (u32::MAX as u64));
    }
}
