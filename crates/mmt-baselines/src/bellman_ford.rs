//! Bellman–Ford, in two forms: the classic serial edge-scan with early
//! exit, and a parallel *frontier* variant (only vertices improved in the
//! previous round relax their edges — a Bellman-Ford/BFS hybrid that is
//! effectively Δ-stepping with a single infinite bucket).
//!
//! Not in the paper's tables, but the natural lower baseline: it shows why
//! bucketed algorithms matter even before Thorup enters the picture, and
//! the frontier variant is the `delta = ∞` endpoint of the `a3_delta_sweep`
//! ablation.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use mmt_platform::AtomicMinU64;
use rayon::prelude::*;

/// Serial Bellman–Ford with early exit. `O(n · m)` worst case.
pub fn bellman_ford(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![INF; g.n()];
    dist[source as usize] = 0;
    for _round in 0..g.n() {
        let mut changed = false;
        for u in g.vertices() {
            let du = dist[u as usize];
            if du == INF {
                continue;
            }
            for (v, w) in g.edges_from(u) {
                let nd = du + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Parallel frontier Bellman–Ford: each round relaxes (in parallel) only
/// the vertices whose distance improved in the previous round.
pub fn bellman_ford_frontier(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let dist: Vec<AtomicMinU64> = (0..g.n()).map(|_| AtomicMinU64::new(INF)).collect();
    dist[source as usize].store(0);
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        let mut next: Vec<VertexId> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                let du = dist[u as usize].load();
                g.edges_from(u).map(move |(v, w)| (v, du + w as Dist))
            })
            .filter(|&(v, nd)| dist[v as usize].fetch_min(nd))
            .map(|(v, _)| v)
            .collect();
        next.par_sort_unstable();
        next.dedup();
        frontier = next;
    }
    dist.into_iter().map(|d| d.load()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    #[test]
    fn matches_dijkstra_on_shapes() {
        for el in [
            shapes::path(20, 3),
            shapes::star(15, 7),
            shapes::complete(10, 2),
            shapes::figure_one(),
        ] {
            let g = CsrGraph::from_edge_list(&el);
            let want = dijkstra(&g, 0);
            assert_eq!(bellman_ford(&g, 0), want);
            assert_eq!(bellman_ford_frontier(&g, 0), want);
        }
    }

    #[test]
    fn matches_dijkstra_on_random() {
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 8);
        spec.seed = 3;
        let g = CsrGraph::from_edge_list(&spec.generate());
        for s in [0u32, 100] {
            let want = dijkstra(&g, s);
            assert_eq!(bellman_ford(&g, s), want);
            assert_eq!(bellman_ford_frontier(&g, s), want);
        }
    }

    #[test]
    fn disconnected_and_loops() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 0, 2), (0, 1, 5)]));
        assert_eq!(bellman_ford(&g, 0), vec![0, 5, INF, INF]);
        assert_eq!(bellman_ford_frontier(&g, 0), vec![0, 5, INF, INF]);
    }
}
