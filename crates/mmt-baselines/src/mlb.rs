//! A multilevel-bucket monotone priority queue for integer keys.
//!
//! This is the radix-heap formulation of Goldberg's multilevel bucket
//! family: bucket `i` holds items whose key first differs from the last
//! extracted minimum at bit `i - 1` (bucket 0 holds exact ties). An item is
//! touched `O(log C_max)` times in total, giving Dijkstra an
//! `O(m + n log C)` bound — and expected `O(n + m)` behaviour on the
//! random/uniform instances of the paper's Table 1.
//!
//! The queue is *monotone*: keys pushed after an extraction must be `≥` the
//! last extracted minimum (exactly the guarantee Dijkstra provides).

/// A monotone integer-keyed priority queue.
///
/// ```
/// use mmt_baselines::mlb::MultiLevelBuckets;
///
/// let mut q = MultiLevelBuckets::new();
/// q.push(9, "far");
/// q.push(2, "near");
/// assert_eq!(q.pop_min(), Some((2, "near")));
/// q.push(5, "mid"); // monotone: ≥ the last extracted key
/// assert_eq!(q.pop_min(), Some((5, "mid")));
/// assert_eq!(q.pop_min(), Some((9, "far")));
/// ```
#[derive(Debug)]
pub struct MultiLevelBuckets<T> {
    /// `buckets[i]` holds keys whose highest bit differing from `last` is
    /// `i - 1`; `buckets[0]` holds keys equal to `last`.
    buckets: Vec<Vec<(u64, T)>>,
    last: u64,
    len: usize,
}

impl<T> Default for MultiLevelBuckets<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MultiLevelBuckets<T> {
    /// An empty queue (minimum anchored at 0).
    pub fn new() -> Self {
        Self {
            buckets: (0..65).map(|_| Vec::new()).collect(),
            last: 0,
            len: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_index(last: u64, key: u64) -> usize {
        debug_assert!(key >= last, "monotonicity violated: {key} < {last}");
        (64 - (key ^ last).leading_zeros()) as usize
    }

    /// Inserts `value` with `key`; `key` must be ≥ the last extracted
    /// minimum (0 initially).
    pub fn push(&mut self, key: u64, value: T) {
        let b = Self::bucket_index(self.last, key);
        self.buckets[b].push((key, value));
        self.len += 1;
    }

    /// Removes and returns an item with the minimum key.
    pub fn pop_min(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Fast path: exact ties with the current anchor.
        if let Some(item) = self.buckets[0].pop() {
            self.len -= 1;
            return Some(item);
        }
        // Find the first non-empty bucket, locate its minimum key, advance
        // the anchor to it, and redistribute the bucket: everything falls
        // into strictly lower buckets (radix-heap invariant), the minimum
        // itself into bucket 0.
        let b = self
            .buckets
            .iter()
            .position(|bk| !bk.is_empty())
            .expect("len > 0 but all buckets empty");
        let drained = std::mem::take(&mut self.buckets[b]);
        let new_last = drained.iter().map(|&(k, _)| k).min().unwrap();
        self.last = new_last;
        for (k, v) in drained {
            let nb = Self::bucket_index(new_last, k);
            debug_assert!(nb < b || k == new_last);
            self.buckets[nb].push((k, v));
        }
        let item = self.buckets[0]
            .pop()
            .expect("minimum must land in bucket 0");
        self.len -= 1;
        Some(item)
    }

    /// The last extracted minimum (the monotone floor for new keys).
    pub fn floor(&self) -> u64 {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_sorted_order() {
        let mut q = MultiLevelBuckets::new();
        for (i, k) in [5u64, 1, 9, 7, 1, 3].into_iter().enumerate() {
            q.push(k, i);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = q.pop_min() {
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 1, 3, 5, 7, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_monotone_usage() {
        let mut q = MultiLevelBuckets::new();
        q.push(2, "a");
        q.push(10, "b");
        assert_eq!(q.pop_min().unwrap().0, 2);
        // New keys may be >= 2.
        q.push(3, "c");
        q.push(2, "d");
        assert_eq!(q.pop_min().unwrap(), (2, "d"));
        assert_eq!(q.pop_min().unwrap(), (3, "c"));
        assert_eq!(q.pop_min().unwrap(), (10, "b"));
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn ties_at_floor() {
        let mut q = MultiLevelBuckets::new();
        q.push(0, 1);
        q.push(0, 2);
        assert_eq!(q.pop_min().unwrap().0, 0);
        assert_eq!(q.pop_min().unwrap().0, 0);
        assert_eq!(q.floor(), 0);
    }

    #[test]
    fn large_keys() {
        let mut q = MultiLevelBuckets::new();
        q.push(u64::MAX - 1, "big");
        q.push(1, "small");
        assert_eq!(q.pop_min().unwrap().1, "small");
        assert_eq!(q.pop_min().unwrap().1, "big");
    }

    #[test]
    fn empty_pop() {
        let mut q: MultiLevelBuckets<()> = MultiLevelBuckets::new();
        assert!(q.pop_min().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn matches_binary_heap_model() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Deterministic pseudo-random monotone workload.
        let mut q = MultiLevelBuckets::new();
        let mut model: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let mut x: u64 = 0x243F6A8885A308D3;
        let mut floor = 0u64;
        for step in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if step % 3 != 0 || model.is_empty() {
                let key = floor + (x >> 40);
                q.push(key, ());
                model.push(Reverse(key));
            } else {
                let got = q.pop_min().unwrap().0;
                let want = model.pop().unwrap().0;
                assert_eq!(got, want);
                floor = got;
            }
        }
        while let Some(Reverse(want)) = model.pop() {
            assert_eq!(q.pop_min().unwrap().0, want);
        }
        assert!(q.is_empty());
    }
}
