//! The compact (`u32`-distance) Δ-stepping kernel.
//!
//! Structurally identical to
//! [`delta_stepping_presplit`](crate::delta_stepping_presplit) — same cyclic
//! bucket ring, generation-stamped dedup, `relaxed_at` guard — but every
//! tentative distance is a `u32` behind an
//! [`AtomicMinU32`](mmt_platform::AtomicMinU32), and the adjacency is the
//! all-`u32` [`CompactSplitCsr`]. The distance array and offset arrays shrink
//! to half their wide size, so each relaxation touches fewer cache lines —
//! the point of the locality work this crate-level kernel belongs to.
//!
//! ## Why saturating `u32` arithmetic is exact
//!
//! [`CompactSplitCsr::try_new`] only admits graphs whose undirected weight
//! sum is below [`COMPACT_DIST_INF`]; shortest paths are simple, so every
//! *true* finite distance fits strictly below the sentinel. A relaxation
//! computes `d(u) ⊕ w` with a saturating add: if it saturates to the
//! sentinel, the propagated value was a spurious over-estimate (some shorter
//! path exists, and its relaxations are unaffected), and `fetch_min` ignores
//! it because nothing is ever worse than the sentinel. Convergence and the
//! final labels are therefore bit-identical to the `u64` kernel — narrowing
//! is checked at construction, never silently lossy during the run.

use mmt_graph::compact::{widen_distances, CompactSplitCsr, COMPACT_DIST_INF};
use mmt_graph::types::{Dist, VertexId, Weight};
use mmt_graph::{CompactCertified, CsrGraph};
use mmt_platform::scratch::{GenerationStamps, ShardBuffers};
use mmt_platform::{available_threads, AtomicMinU32, EventCounters};

pub use mmt_graph::compact::CompactError;

use crate::delta_stepping::DeltaConfig;
use crate::relax_core::{relax_arcs_compact, RELAX_AHEAD};

/// Reusable per-query state for [`delta_stepping_compact_presplit`]: the
/// `u32` twin of [`DeltaScratch`](crate::DeltaScratch). Retains capacity
/// across queries; after the warm-up query a solve allocates nothing.
#[derive(Debug)]
pub struct CompactScratch {
    dist: Vec<AtomicMinU32>,
    /// Distance at which each vertex was last relaxed this query
    /// ([`COMPACT_DIST_INF`] = never).
    relaxed_at: Vec<u32>,
    /// "Queued in bucket b" stamps (see the wide kernel).
    queued: GenerationStamps,
    stamp_base: u64,
    buckets: Vec<Vec<VertexId>>,
    batch: Vec<VertexId>,
    active: Vec<VertexId>,
    removed: Vec<VertexId>,
    relax: ShardBuffers<(VertexId, u32)>,
}

impl CompactScratch {
    /// Scratch sized for `split` (vertex count and bucket-ring width).
    /// Accepts any [`CompactCertified`] representation — the duplicating
    /// [`CompactSplitCsr`] or an arena-backed compact view.
    pub fn new(split: &impl CompactCertified) -> Self {
        let n = split.n();
        Self {
            dist: (0..n)
                .map(|_| AtomicMinU32::new(COMPACT_DIST_INF))
                .collect(),
            relaxed_at: vec![COMPACT_DIST_INF; n],
            queued: GenerationStamps::new(n),
            stamp_base: 1,
            buckets: vec![Vec::new(); Self::ring_len(split)],
            batch: Vec::new(),
            active: Vec::new(),
            removed: Vec::new(),
            relax: ShardBuffers::new(available_threads()),
        }
    }

    /// Cyclic ring length for `split`: `C/Δ + 2` slots.
    fn ring_len(split: &impl CompactCertified) -> usize {
        (split.max_weight() as u64 / split.delta().max(1) as u64 + 2) as usize
    }

    fn reset(&mut self, split: &impl CompactCertified) {
        let n = split.n();
        if self.dist.len() != n {
            self.dist
                .resize_with(n, || AtomicMinU32::new(COMPACT_DIST_INF));
            self.relaxed_at.resize(n, COMPACT_DIST_INF);
        }
        let ring = Self::ring_len(split);
        if self.buckets.len() != ring {
            self.buckets.resize_with(ring, Vec::new);
        }
        if self.queued.len() < n {
            self.queued.reset(n);
        }
        for d in &self.dist {
            d.store(COMPACT_DIST_INF);
        }
        self.relaxed_at.fill(COMPACT_DIST_INF);
        for b in &mut self.buckets {
            b.clear();
        }
    }

    /// The narrow distance to `v` computed by the last query
    /// ([`COMPACT_DIST_INF`] = unreached).
    #[inline]
    pub fn narrow_distance(&self, v: VertexId) -> u32 {
        self.dist[v as usize].load()
    }

    /// Copies the last query's distances into `out` as workspace-convention
    /// `u64`s (sentinel → [`mmt_graph::types::INF`]). Does not allocate when
    /// `out` has the capacity.
    pub fn copy_distances_into(&self, out: &mut Vec<Dist>) {
        out.clear();
        out.extend(self.dist.iter().map(|d| {
            let v = d.load();
            if v == COMPACT_DIST_INF {
                mmt_graph::types::INF
            } else {
                v as Dist
            }
        }));
    }

    /// The last query's distances as a fresh `u64` vector.
    pub fn to_distances(&self) -> Vec<Dist> {
        let mut out = Vec::with_capacity(self.dist.len());
        self.copy_distances_into(&mut out);
        out
    }

    /// Heap bytes currently held.
    pub fn heap_bytes(&self) -> usize {
        use mmt_platform::MemFootprint;
        self.dist.capacity() * std::mem::size_of::<AtomicMinU32>()
            + self.relaxed_at.capacity() * std::mem::size_of::<u32>()
            + self.queued.heap_bytes()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
            + self.relax.heap_bytes()
    }
}

/// The compact Δ-stepping hot path: [`delta_stepping_presplit`]
/// (crate::delta_stepping_presplit) with `u32` distances over a
/// [`CompactSplitCsr`]. Distances stay in `scratch`; see
/// [`CompactScratch::copy_distances_into`].
///
/// Generic over [`CompactCertified`] — only representations whose
/// construction proved the `u32` saturation argument are accepted.
pub fn delta_stepping_compact_presplit<S: CompactCertified + Sync>(
    split: &S,
    source: VertexId,
    scratch: &mut CompactScratch,
    counters: Option<&EventCounters>,
) {
    assert!((source as usize) < split.n(), "source out of range");
    scratch.reset(split);
    let delta = split.delta().max(1);
    let CompactScratch {
        dist,
        relaxed_at,
        queued,
        stamp_base,
        buckets,
        batch,
        active,
        removed,
        relax,
    } = scratch;
    let dist: &[AtomicMinU32] = dist;
    let nb = buckets.len() as u64;
    let slot_of = |b: u64| (b % nb) as usize;

    dist[source as usize].store(0);
    buckets[0].push(source);
    queued.mark_with(source as usize, *stamp_base);
    let mut pending = 1usize;
    let mut cur: u64 = 0; // absolute bucket index

    while pending > 0 {
        let mut scanned = 0u64;
        while buckets[slot_of(cur)].is_empty() {
            cur += 1;
            scanned += 1;
            assert!(scanned <= nb, "pending entries outside the cyclic window");
        }
        let slot = slot_of(cur);
        let cur_stamp = *stamp_base + cur;
        removed.clear();

        // Light phases: expand the current bucket to a fixpoint.
        while !buckets[slot].is_empty() {
            std::mem::swap(batch, &mut buckets[slot]);
            pending -= batch.len();
            active.clear();
            for &v in batch.iter() {
                let vi = v as usize;
                if queued.stamp_of(vi) == cur_stamp {
                    queued.unmark(vi);
                }
                let d = dist[vi].load();
                if (d / delta) as u64 == cur && d < relaxed_at[vi] {
                    if relaxed_at[vi] == COMPACT_DIST_INF {
                        removed.push(v);
                    }
                    relaxed_at[vi] = d;
                    active.push(v);
                }
            }
            batch.clear();
            if active.is_empty() {
                continue;
            }
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
                let arcs = active
                    .iter()
                    .map(|&v| split.light(v).0.len() as u64)
                    .sum::<u64>();
                ev.arcs_scanned.add(arcs);
                ev.relaxations.add(arcs);
            }
            relax.scatter(active, |&u, lane| {
                let du = dist[u as usize].load();
                let (ts, ws) = split.light(u);
                relax_arcs_compact::<RELAX_AHEAD>(dist, du, ts, ws, |v, nd| lane.push((v, nd)));
            });
            let mut drained = 0u64;
            relax.drain(|(v, nd)| {
                drained += 1;
                let b = (nd / delta) as u64;
                debug_assert!(b >= cur);
                if queued.mark_with(v as usize, *stamp_base + b) {
                    buckets[slot_of(b)].push(v);
                    pending += 1;
                }
            });
            if let Some(ev) = counters {
                ev.improvements.add(drained);
            }
        }

        // Heavy phase: each settled vertex relaxes its heavy edges once.
        if !removed.is_empty() {
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
                ev.settled.add(removed.len() as u64);
                let arcs = removed
                    .iter()
                    .map(|&v| split.heavy(v).0.len() as u64)
                    .sum::<u64>();
                ev.arcs_scanned.add(arcs);
                ev.relaxations.add(arcs);
            }
            relax.scatter(removed, |&u, lane| {
                let du = dist[u as usize].load();
                let (ts, ws) = split.heavy(u);
                relax_arcs_compact::<RELAX_AHEAD>(dist, du, ts, ws, |v, nd| lane.push((v, nd)));
            });
            let mut drained = 0u64;
            relax.drain(|(v, nd)| {
                drained += 1;
                let b = (nd / delta) as u64;
                debug_assert!(b > cur);
                if queued.mark_with(v as usize, *stamp_base + b) {
                    buckets[slot_of(b)].push(v);
                    pending += 1;
                }
            });
            if let Some(ev) = counters {
                ev.improvements.add(drained);
            }
        }
        cur += 1;
    }
    *stamp_base += cur + nb + 1;
}

/// One-shot convenience: build the compact split and scratch, solve, widen.
/// Returns [`CompactError`] when the graph cannot be narrowed — callers fall
/// back to the wide kernel, so narrowing failure degrades performance, never
/// correctness.
pub fn delta_stepping_compact(
    g: &CsrGraph,
    source: VertexId,
    cfg: DeltaConfig,
    counters: Option<&EventCounters>,
) -> Result<Vec<Dist>, CompactError> {
    assert!((source as usize) < g.n(), "source out of range");
    let delta = cfg.delta().min(u32::MAX as u64) as Weight;
    let split = CompactSplitCsr::try_new(g, delta)?;
    let mut scratch = CompactScratch::new(&split);
    delta_stepping_compact_presplit(&split, source, &mut scratch, counters);
    let mut out = Vec::with_capacity(g.n());
    widen_distances(
        &scratch.dist.iter().map(|d| d.load()).collect::<Vec<u32>>(),
        &mut out,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta_stepping::adaptive_delta;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::{EdgeList, INF};

    #[test]
    fn matches_dijkstra_on_workloads() {
        for (class, wd) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Random, WeightDist::PolyLog),
            (GraphClass::Rmat, WeightDist::Uniform),
            (GraphClass::Rmat, WeightDist::PolyLog),
        ] {
            let mut spec = WorkloadSpec::new(class, wd, 8, 8);
            spec.seed = 23;
            let g = CsrGraph::from_edge_list(&spec.generate());
            for s in [0u32, 17, 200] {
                let want = dijkstra(&g, s);
                let got = delta_stepping_compact(&g, s, DeltaConfig::adaptive(&g), None).unwrap();
                assert_eq!(got, want, "{} source {s}", spec.name());
            }
        }
    }

    #[test]
    fn scratch_reuse_across_queries() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 7, 9);
        spec.seed = 99;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let split =
            CompactSplitCsr::try_new(&g, adaptive_delta(&g).min(u32::MAX as u64) as u32).unwrap();
        let mut scratch = CompactScratch::new(&split);
        let mut out = Vec::new();
        for s in [0u32, 3, 50, 100, 3, 0] {
            delta_stepping_compact_presplit(&split, s, &mut scratch, None);
            scratch.copy_distances_into(&mut out);
            assert_eq!(out, dijkstra(&g, s), "source {s}");
        }
        // Regrows for a differently-sized split.
        let small = CsrGraph::from_edge_list(&shapes::path(5, 2));
        let small_split = CompactSplitCsr::try_new(&small, 2).unwrap();
        delta_stepping_compact_presplit(&small_split, 0, &mut scratch, None);
        scratch.copy_distances_into(&mut out);
        assert_eq!(out, dijkstra(&small, 0));
    }

    #[test]
    fn compact_arena_view_matches_duplicating_split() {
        use mmt_graph::CsrArena;
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 8);
        spec.seed = 41;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let delta = adaptive_delta(&g) as u32;
        let dup = CompactSplitCsr::try_new(&g, delta).unwrap();
        let view = CsrArena::new(&g).compact_split(delta).unwrap();
        let mut scratch = CompactScratch::new(&view);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in [0u32, 17, 200] {
            delta_stepping_compact_presplit(&view, s, &mut scratch, None);
            scratch.copy_distances_into(&mut a);
            delta_stepping_compact_presplit(&dup, s, &mut scratch, None);
            scratch.copy_distances_into(&mut b);
            assert_eq!(a, b, "source {s}");
            assert_eq!(a, dijkstra(&g, s), "source {s}");
        }
    }

    #[test]
    fn unreached_vertices_widen_to_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 6)]));
        let d = delta_stepping_compact(&g, 0, DeltaConfig::new(3), None).unwrap();
        assert_eq!(d, vec![0, 6, INF, INF]);
    }

    #[test]
    fn narrowing_refusal_propagates() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            3,
            [(0, 1, u32::MAX), (1, 2, u32::MAX)],
        ));
        assert!(delta_stepping_compact(&g, 0, DeltaConfig::new(8), None).is_err());
    }

    #[test]
    fn near_sentinel_distances_stay_exact() {
        // A path whose far end sits just below the u32 sentinel: the compact
        // kernel must neither saturate a true distance nor misbucket it.
        let big = (u32::MAX - 10) / 2;
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(3, [(0, 1, big), (1, 2, big)]));
        let want = dijkstra(&g, 0);
        assert_eq!(want[2], 2 * big as u64);
        let got = delta_stepping_compact(&g, 0, DeltaConfig::adaptive(&g), None).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn counters_match_the_wide_kernel_accounting() {
        let g = CsrGraph::from_edge_list(&shapes::path(20, 3));
        let ev = EventCounters::new();
        let d = delta_stepping_compact(&g, 0, DeltaConfig::new(6), Some(&ev)).unwrap();
        assert_eq!(d, dijkstra(&g, 0));
        assert_eq!(ev.settled.get(), 20);
        assert_eq!(ev.relaxations.get() as usize, g.num_arcs());
        assert_eq!(ev.arcs_scanned.get() as usize, g.num_arcs());
    }
}
