//! Oracle-free SSSP certificate checking and the structured wrong-answer
//! report shared with the differential harness.
//!
//! A distance vector is the unique SSSP solution iff (a) the source reads
//! 0, (b) no edge is *violated* (`d(v) ≤ d(u) + w` for every arc), and
//! (c) every finite non-source vertex has a *tight* incoming arc
//! (`d(v) = d(u) + w`). Conditions (b) and (c) together force
//! `d(v) = δ(v)` by induction along tight arcs. This lets tests and the
//! benchmark harness certify any solver's output without re-running a
//! reference solver.
//!
//! Failures are reported as a [`Divergence`]: a structured record naming
//! the engine under test, the query, the offending vertex, and the
//! got/want pair — the same shape `mmt-verify`'s `DifferentialRunner`
//! emits when an engine disagrees with the Dijkstra oracle.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use rayon::prelude::*;
use std::fmt;

/// Which invariant a [`Divergence`] reports as broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceKind {
    /// The distance vector has the wrong number of entries.
    LengthMismatch,
    /// The query source is not a vertex of the graph.
    SourceOutOfRange,
    /// `dist[source]` is not 0.
    WrongSourceDistance,
    /// An arc `(u, v, w)` with `d(v) > d(u) + w`.
    ViolatedEdge,
    /// A finite non-source vertex with no tight incoming arc.
    MissingTightEdge,
    /// A vertex marked unreachable that has a reachable neighbour.
    FalseUnreachable,
    /// Differential check: an engine disagrees with the oracle.
    OracleMismatch,
    /// The reachable set disagrees with the connected-components oracle.
    ComponentMismatch,
    /// A metamorphic property (scaling, relabeling, …) was broken.
    MetamorphicViolation,
}

impl DivergenceKind {
    /// Short human label for the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            DivergenceKind::LengthMismatch => "length mismatch",
            DivergenceKind::SourceOutOfRange => "source out of range",
            DivergenceKind::WrongSourceDistance => "wrong source distance",
            DivergenceKind::ViolatedEdge => "violated edge",
            DivergenceKind::MissingTightEdge => "missing tight edge",
            DivergenceKind::FalseUnreachable => "false unreachable",
            DivergenceKind::OracleMismatch => "oracle mismatch",
            DivergenceKind::ComponentMismatch => "component mismatch",
            DivergenceKind::MetamorphicViolation => "metamorphic violation",
        }
    }
}

/// A structured wrong-answer report: which engine, on which case and
/// query, diverged where, and what it returned versus what was expected.
///
/// Produced by [`verify_sssp`] (certificate failures) and by the
/// differential / metamorphic / schedule checks in `mmt-verify`. The
/// `Display` (and `Debug`) rendering names the engine and the source
/// vertex, so a bare `.unwrap()` in a test prints an actionable message.
#[derive(Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The engine whose output diverged (`"candidate"` when a bare
    /// distance vector was handed to the certificate checker).
    pub engine: String,
    /// The graph case label, when the caller supplied one.
    pub case: String,
    /// The query source.
    pub source: VertexId,
    /// The vertex where the divergence was detected, if localised.
    pub vertex: Option<VertexId>,
    /// The value the engine produced there.
    pub got: Option<Dist>,
    /// The value it should have produced (when known).
    pub want: Option<Dist>,
    /// Broken invariant.
    pub kind: DivergenceKind,
    /// Human explanation with the concrete witness.
    pub detail: String,
}

fn fmt_dist(d: Dist) -> String {
    if d == INF {
        "INF".to_string()
    } else {
        d.to_string()
    }
}

impl Divergence {
    /// A report of `kind` for the query `source`, engine `"candidate"`.
    pub fn new(kind: DivergenceKind, source: VertexId, detail: impl Into<String>) -> Self {
        Self {
            engine: "candidate".to_string(),
            case: String::new(),
            source,
            vertex: None,
            got: None,
            want: None,
            kind,
            detail: detail.into(),
        }
    }

    /// Names the engine under test.
    pub fn for_engine(mut self, engine: &str) -> Self {
        self.engine = engine.to_string();
        self
    }

    /// Names the graph case.
    pub fn for_case(mut self, case: &str) -> Self {
        self.case = case.to_string();
        self
    }

    /// Localises the divergence to a vertex with its got/want pair.
    pub fn at(mut self, vertex: VertexId, got: Dist, want: Dist) -> Self {
        self.vertex = Some(vertex);
        self.got = Some(got);
        self.want = Some(want);
        self
    }

    /// Localises the divergence to a vertex with only the observed value.
    pub fn at_vertex(mut self, vertex: VertexId, got: Dist) -> Self {
        self.vertex = Some(vertex);
        self.got = Some(got);
        self
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine `{}` diverged", self.engine)?;
        if !self.case.is_empty() {
            write!(f, " on case `{}`", self.case)?;
        }
        write!(f, " (source {})", self.source)?;
        if let Some(v) = self.vertex {
            write!(f, " at vertex {v}")?;
        }
        match (self.got, self.want) {
            (Some(g), Some(w)) => write!(f, ": got {}, want {}", fmt_dist(g), fmt_dist(w))?,
            (Some(g), None) => write!(f, ": got {}", fmt_dist(g))?,
            _ => {}
        }
        write!(f, " [{}] {}", self.kind.as_str(), self.detail)
    }
}

// Debug delegates to Display so `.unwrap()` in tests prints the full
// engine/source/vertex story instead of a struct dump.
impl fmt::Debug for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for Divergence {}

/// Verifies that `dist` is the exact SSSP solution from `source`.
///
/// Returns the first broken invariant as a structured [`Divergence`]
/// (engine `"candidate"`); use [`verify_sssp_engine`] to stamp the report
/// with the solver's name.
pub fn verify_sssp(g: &CsrGraph, source: VertexId, dist: &[Dist]) -> Result<(), Divergence> {
    if dist.len() != g.n() {
        return Err(Divergence::new(
            DivergenceKind::LengthMismatch,
            source,
            format!("dist has {} entries for n={}", dist.len(), g.n()),
        ));
    }
    if (source as usize) >= g.n() {
        return Err(Divergence::new(
            DivergenceKind::SourceOutOfRange,
            source,
            format!("source {} out of range for n={}", source, g.n()),
        ));
    }
    if dist[source as usize] != 0 {
        return Err(Divergence::new(
            DivergenceKind::WrongSourceDistance,
            source,
            "dist[source] must be 0".to_string(),
        )
        .at(source, dist[source as usize], 0));
    }
    let problem = (0..g.n() as VertexId).into_par_iter().find_map_any(|u| {
        let du = dist[u as usize];
        // (b) no violated arc out of u
        if du != INF {
            for (v, w) in g.edges_from(u) {
                if dist[v as usize] > du.saturating_add(w as Dist) {
                    return Some(
                        Divergence::new(
                            DivergenceKind::ViolatedEdge,
                            source,
                            format!(
                                "edge ({u},{v},{w}) is violated: {} > {} + {w}",
                                fmt_dist(dist[v as usize]),
                                du
                            ),
                        )
                        .at(
                            v,
                            dist[v as usize],
                            du.saturating_add(w as Dist),
                        ),
                    );
                }
            }
        }
        // (c) tightness for finite non-source vertices
        if u != source && du != INF {
            let tight = g
                .edges_from(u)
                .any(|(v, w)| dist[v as usize] != INF && dist[v as usize] + w as Dist == du);
            if !tight {
                return Some(
                    Divergence::new(
                        DivergenceKind::MissingTightEdge,
                        source,
                        format!("vertex {u} (dist {du}) has no tight incoming edge"),
                    )
                    .at_vertex(u, du),
                );
            }
        }
        // unreachable vertices must not have finite neighbours (follows
        // from (b), but check directly for a better error message)
        if du == INF {
            for (v, _) in g.edges_from(u) {
                if dist[v as usize] != INF {
                    return Some(
                        Divergence::new(
                            DivergenceKind::FalseUnreachable,
                            source,
                            format!(
                                "vertex {u} is marked unreachable but neighbour {v} is reached"
                            ),
                        )
                        .at_vertex(u, INF),
                    );
                }
            }
        }
        None
    });
    match problem {
        Some(div) => Err(div),
        None => Ok(()),
    }
}

/// As [`verify_sssp`], stamping any failure with the engine's name so the
/// report (and a test's `.unwrap()` panic) says *which* solver diverged.
pub fn verify_sssp_engine(
    engine: &str,
    g: &CsrGraph,
    source: VertexId,
    dist: &[Dist],
) -> Result<(), Divergence> {
    verify_sssp(g, source, dist).map_err(|d| d.for_engine(engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;

    #[test]
    fn accepts_dijkstra_output() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let d = dijkstra(&g, 0);
        verify_sssp(&g, 0, &d).unwrap();
    }

    #[test]
    fn rejects_too_small_distance() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 5));
        let bad = vec![0, 4, 10];
        let err = verify_sssp(&g, 0, &bad).unwrap_err();
        assert!(
            matches!(
                err.kind,
                DivergenceKind::MissingTightEdge | DivergenceKind::ViolatedEdge
            ),
            "{err}"
        );
        assert_eq!(err.source, 0);
    }

    #[test]
    fn rejects_too_large_distance() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 5));
        let bad = vec![0, 6, 10];
        assert!(verify_sssp(&g, 0, &bad).is_err());
    }

    #[test]
    fn rejects_wrong_source_distance() {
        let g = CsrGraph::from_edge_list(&shapes::path(2, 1));
        let err = verify_sssp(&g, 0, &[1, 2]).unwrap_err();
        assert_eq!(err.kind, DivergenceKind::WrongSourceDistance);
        assert_eq!(err.got, Some(1));
        assert_eq!(err.want, Some(0));
    }

    #[test]
    fn rejects_false_unreachable() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 1));
        let bad = vec![0, 1, INF];
        let err = verify_sssp(&g, 0, &bad).unwrap_err();
        assert!(
            matches!(
                err.kind,
                DivergenceKind::FalseUnreachable | DivergenceKind::ViolatedEdge
            ),
            "{err}"
        );
    }

    #[test]
    fn accepts_disconnected_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 2)]));
        verify_sssp(&g, 0, &[0, 2, INF, INF]).unwrap();
    }

    #[test]
    fn rejects_wrong_length() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 1));
        let err = verify_sssp(&g, 0, &[0, 1]).unwrap_err();
        assert_eq!(err.kind, DivergenceKind::LengthMismatch);
    }

    #[test]
    fn engine_wrapper_names_engine_and_source() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 5));
        let err = verify_sssp_engine("delta-stepping", &g, 0, &[0, 4, 10]).unwrap_err();
        assert_eq!(err.engine, "delta-stepping");
        let text = err.to_string();
        assert!(text.contains("delta-stepping"), "{text}");
        assert!(text.contains("source 0"), "{text}");
    }

    #[test]
    fn display_renders_got_want_and_inf() {
        let d = Divergence::new(DivergenceKind::OracleMismatch, 3, "differential check")
            .for_engine("thorup")
            .for_case("zero-chain-64")
            .at(17, INF, 12);
        let text = d.to_string();
        assert!(text.contains("engine `thorup`"), "{text}");
        assert!(text.contains("case `zero-chain-64`"), "{text}");
        assert!(text.contains("source 3"), "{text}");
        assert!(text.contains("vertex 17"), "{text}");
        assert!(text.contains("got INF, want 12"), "{text}");
    }
}
