//! Oracle-free SSSP certificate checking.
//!
//! A distance vector is the unique SSSP solution iff (a) the source reads
//! 0, (b) no edge is *violated* (`d(v) ≤ d(u) + w` for every arc), and
//! (c) every finite non-source vertex has a *tight* incoming arc
//! (`d(v) = d(u) + w`). Conditions (b) and (c) together force
//! `d(v) = δ(v)` by induction along tight arcs. This lets tests and the
//! benchmark harness certify any solver's output without re-running a
//! reference solver.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use rayon::prelude::*;

/// Verifies that `dist` is the exact SSSP solution from `source`.
pub fn verify_sssp(g: &CsrGraph, source: VertexId, dist: &[Dist]) -> Result<(), String> {
    if dist.len() != g.n() {
        return Err(format!("dist has {} entries for n={}", dist.len(), g.n()));
    }
    if (source as usize) >= g.n() {
        return Err("source out of range".into());
    }
    if dist[source as usize] != 0 {
        return Err(format!(
            "dist[source] = {}, expected 0",
            dist[source as usize]
        ));
    }
    let problem = (0..g.n() as VertexId).into_par_iter().find_map_any(|u| {
        let du = dist[u as usize];
        // (b) no violated arc out of u
        if du != INF {
            for (v, w) in g.edges_from(u) {
                if dist[v as usize] > du.saturating_add(w as Dist) {
                    return Some(format!(
                        "violated edge ({u},{v},{w}): {} > {} + {w}",
                        dist[v as usize], du
                    ));
                }
            }
        }
        // (c) tightness for finite non-source vertices
        if u != source && du != INF {
            let tight = g
                .edges_from(u)
                .any(|(v, w)| dist[v as usize] != INF && dist[v as usize] + w as Dist == du);
            if !tight {
                return Some(format!("vertex {u} (dist {du}) has no tight incoming edge"));
            }
        }
        // unreachable vertices must not have finite neighbours (follows
        // from (b), but check directly for a better error message)
        if du == INF {
            for (v, _) in g.edges_from(u) {
                if dist[v as usize] != INF {
                    return Some(format!(
                        "vertex {u} is marked unreachable but neighbours reachable {v}"
                    ));
                }
            }
        }
        None
    });
    match problem {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;

    #[test]
    fn accepts_dijkstra_output() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let d = dijkstra(&g, 0);
        verify_sssp(&g, 0, &d).unwrap();
    }

    #[test]
    fn rejects_too_small_distance() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 5));
        let bad = vec![0, 4, 10];
        let err = verify_sssp(&g, 0, &bad).unwrap_err();
        assert!(err.contains("tight") || err.contains("violated"), "{err}");
    }

    #[test]
    fn rejects_too_large_distance() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 5));
        let bad = vec![0, 6, 10];
        assert!(verify_sssp(&g, 0, &bad).is_err());
    }

    #[test]
    fn rejects_wrong_source_distance() {
        let g = CsrGraph::from_edge_list(&shapes::path(2, 1));
        assert!(verify_sssp(&g, 0, &[1, 2]).unwrap_err().contains("source"));
    }

    #[test]
    fn rejects_false_unreachable() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 1));
        let bad = vec![0, 1, INF];
        assert!(verify_sssp(&g, 0, &bad).is_err());
    }

    #[test]
    fn accepts_disconnected_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 2)]));
        verify_sssp(&g, 0, &[0, 2, INF, INF]).unwrap();
    }

    #[test]
    fn rejects_wrong_length() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 1));
        assert!(verify_sssp(&g, 0, &[0, 1]).is_err());
    }
}
