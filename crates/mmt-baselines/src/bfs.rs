//! Parallel level-synchronous BFS — hop distances, i.e. SSSP with unit
//! weights. Used by the examples for diameter estimation and as another
//! cross-check (`bfs == dijkstra` on unit-weight graphs).

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Hop distance from `source` to every vertex.
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let dist: Vec<AtomicU64> = (0..g.n()).map(|_| AtomicU64::new(INF)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut level: Dist = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next: Vec<VertexId> = frontier
            .par_iter()
            .flat_map_iter(|&u| g.edges_from(u).map(|(v, _)| v))
            .filter(|&v| {
                dist[v as usize]
                    .compare_exchange(INF, level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            })
            .collect();
        next.par_sort_unstable();
        next.dedup();
        frontier = next;
    }
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// The eccentricity of `source` (largest finite hop distance) — a cheap
/// diameter lower bound used by the road-network example.
pub fn eccentricity(g: &CsrGraph, source: VertexId) -> Dist {
    bfs(g, source)
        .into_iter()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    #[test]
    fn hop_counts_on_path() {
        let g = CsrGraph::from_edge_list(&shapes::path(5, 9));
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
    }

    #[test]
    fn equals_dijkstra_on_unit_weights() {
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, 8, 6);
        spec.seed = 4;
        let mut el = spec.generate();
        for e in &mut el.edges {
            e.w = 1;
        }
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(bfs(&g, 7), dijkstra(&g, 7));
    }

    #[test]
    fn disconnected_inf_and_loops() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(3, [(0, 0, 1)]));
        assert_eq!(bfs(&g, 0), vec![0, INF, INF]);
        assert_eq!(eccentricity(&g, 0), 0);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        use mmt_graph::gen::grid::grid_graph;
        use mmt_graph::gen::weights::WeightSampler;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        let el = grid_graph(6, 7, &WeightSampler::new(WeightDist::Uniform, 4), &mut rng);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(eccentricity(&g, 0), 5 + 6);
    }
}
