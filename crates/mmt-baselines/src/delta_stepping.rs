//! Parallel Δ-stepping (Meyer & Sanders), the paper's parallel baseline.
//!
//! Vertices are kept in buckets of width Δ by tentative distance. The
//! current bucket is expanded in *light phases* (edges of weight ≤ Δ, which
//! may re-insert into the same bucket) until stable, then the accumulated
//! removed set relaxes its *heavy* edges (weight > Δ) in one parallel pass.
//! Request generation and relaxation (`fetch_min`) run on the rayon pool;
//! bucket maintenance is serial, with stale entries discarded lazily — the
//! same engineering shape as the MTA-2 implementation of Madduri et al.
//! that the paper benchmarks against.
//!
//! Buckets are a cyclic array of `C/Δ + 2` slots: every queued tentative
//! distance lies within `C + Δ` of the current bucket's base, so live
//! entries never collide across cycles.
//!
//! Two kernels live here:
//!
//! * [`delta_stepping_presplit`] — the hot path. It runs over a
//!   [`SplitCsr`] (light/heavy edges pre-partitioned per vertex, so phases
//!   walk exactly the slice they need) with all per-round state owned by a
//!   reusable [`DeltaScratch`]: recycled bucket vectors, lane-indexed relax
//!   buffers instead of per-phase `collect()`, and generation-stamped
//!   duplicate suppression instead of `sort + dedup`. After the first query
//!   warms the scratch, a query allocates nothing.
//! * [`delta_stepping_reference`] — the original kernel, kept verbatim as
//!   the before-side of the `bench_hotpath` allocation comparison and as a
//!   second implementation for differential testing.
//!
//! [`delta_stepping`] / [`delta_stepping_counted`] keep their historical
//! signatures but now route through the pre-split kernel.

use crate::relax_core::relax_arcs;
use mmt_graph::types::{Dist, VertexId, Weight, INF};
use mmt_graph::{CsrGraph, SplitAdjacency, SplitCsr};
use mmt_platform::scratch::{GenerationStamps, ShardBuffers};
use mmt_platform::{AtomicMinU64, CancelToken, EventCounters};
use rayon::prelude::*;

/// Δ-stepping parameters. Construct with [`DeltaConfig::new`],
/// [`DeltaConfig::auto`], or [`DeltaConfig::adaptive`] and adjust via the
/// chainable [`with_delta`](DeltaConfig::with_delta):
///
/// ```
/// use mmt_baselines::DeltaConfig;
/// let cfg = DeltaConfig::new(8).with_delta(16);
/// assert_eq!(cfg.delta(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Bucket width Δ ≥ 1.
    #[deprecated(since = "0.2.0", note = "use DeltaConfig::new/with_delta and delta()")]
    pub delta: u64,
}

#[allow(deprecated)]
impl DeltaConfig {
    /// A config with the given bucket width Δ (clamped to ≥ 1).
    pub fn new(delta: u64) -> Self {
        Self {
            delta: delta.max(1),
        }
    }

    /// Uses the standard heuristic Δ = C / average-degree (see
    /// [`default_delta`]).
    pub fn auto(g: &CsrGraph) -> Self {
        Self::new(default_delta(g))
    }

    /// Uses the adaptive heuristic Δ = 2·avg-weight / average-degree (see
    /// [`adaptive_delta`]), which tracks the actual weight mass instead of
    /// the maximum weight `C`.
    pub fn adaptive(g: &CsrGraph) -> Self {
        Self::new(adaptive_delta(g))
    }

    /// Returns a copy with the bucket width replaced (clamped to ≥ 1).
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.delta = delta.max(1);
        self
    }

    /// The bucket width Δ.
    pub fn delta(&self) -> u64 {
        self.delta
    }
}

/// The Meyer–Sanders heuristic bucket width: `max(1, C / avg_degree)`,
/// which bounds the expected number of re-relaxations per light phase.
pub fn default_delta(g: &CsrGraph) -> u64 {
    if g.n() == 0 || g.num_arcs() == 0 {
        return 1;
    }
    let avg_degree = (g.num_arcs() as u64 / g.n() as u64).max(1);
    (g.max_weight() as u64 / avg_degree).max(1)
}

/// Adaptive bucket width: `max(1, 2·avg_weight / avg_degree)`.
///
/// For a uniform weight distribution (UWD) the average weight is `C/2`, so
/// this reduces to the classic `C / avg_degree` of [`default_delta`]. For
/// heavy-tailed distributions like the paper's poly-log PWD — where most
/// weights are tiny but `C` is huge — `C / avg_degree` produces a bucket so
/// wide the algorithm degenerates towards Bellman–Ford; seeding from the
/// *average* weight keeps the bucket matched to where the weight mass
/// actually is.
pub fn adaptive_delta(g: &CsrGraph) -> u64 {
    if g.n() == 0 || g.num_arcs() == 0 {
        return 1;
    }
    let avg_weight = (g.total_arc_weight() / g.num_arcs() as u64).max(1);
    let avg_degree = (g.num_arcs() as u64 / g.n() as u64).max(1);
    (2 * avg_weight / avg_degree).max(1)
}

/// Single-source shortest paths by parallel Δ-stepping.
///
/// ```
/// use mmt_baselines::{delta_stepping, DeltaConfig};
/// use mmt_graph::{types::EdgeList, CsrGraph};
///
/// let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
///     3,
///     [(0, 1, 4), (1, 2, 4), (0, 2, 9)],
/// ));
/// let dist = delta_stepping(&g, 0, DeltaConfig::auto(&g));
/// assert_eq!(dist, vec![0, 4, 8]);
/// ```
pub fn delta_stepping(g: &CsrGraph, source: VertexId, cfg: DeltaConfig) -> Vec<Dist> {
    delta_stepping_counted(g, source, cfg, None)
}

/// As [`delta_stepping`], optionally filling in [`EventCounters`] (bucket
/// expansions = light phases + heavy phases; relaxations = edges actually
/// walked; improvements = strict `fetch_min` wins; settled = vertices
/// removed from buckets) so Δ-stepping runs can be compared against
/// instrumented Thorup runs on equal terms.
///
/// One-shot convenience: builds the [`SplitCsr`] and a fresh
/// [`DeltaScratch`] per call. Repeated queries over one graph should build
/// those once and call [`delta_stepping_presplit`] directly.
pub fn delta_stepping_counted(
    g: &CsrGraph,
    source: VertexId,
    cfg: DeltaConfig,
    counters: Option<&EventCounters>,
) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let delta = cfg.delta().min(u32::MAX as u64) as Weight;
    let split = SplitCsr::new(g, delta);
    let mut scratch = DeltaScratch::new(&split);
    delta_stepping_presplit(&split, source, &mut scratch, counters);
    scratch.to_distances()
}

/// Reusable per-query state for [`delta_stepping_presplit`].
///
/// Everything a query touches lives here: the tentative-distance array, the
/// cyclic bucket ring, the batch/active/removed staging vectors, the
/// lane-indexed parallel relax buffers, and the two duplicate-suppression
/// stamp arrays. All of it retains capacity across queries, so after the
/// first (warm-up) query a solve performs zero heap allocations.
#[derive(Debug)]
pub struct DeltaScratch {
    dist: Vec<AtomicMinU64>,
    /// Distance at which each vertex was last relaxed this query (`INF` =
    /// never). Guards against re-relaxing a re-scanned vertex whose
    /// distance did not improve, and doubles as the `removed` dedup.
    relaxed_at: Vec<Dist>,
    /// "Queued in bucket b" stamps: `stamp_base + b` marks membership, so
    /// a vertex enters each bucket at most once per queueing epoch.
    queued: GenerationStamps,
    /// Start of this query's stamp range; advanced past every stamp used so
    /// queries never need an `O(n)` stamp clear.
    stamp_base: u64,
    buckets: Vec<Vec<VertexId>>,
    batch: Vec<VertexId>,
    active: Vec<VertexId>,
    removed: Vec<VertexId>,
    relax: ShardBuffers<(VertexId, Dist)>,
}

impl DeltaScratch {
    /// Scratch sized for `split` (its vertex count and bucket-ring width).
    /// Accepts any [`SplitAdjacency`] representation — the duplicating
    /// [`SplitCsr`] or an arena-backed offset view. Lane count follows the
    /// *installed* rayon budget, so a scratch built inside
    /// [`mmt_platform::with_pool`] gets one relax lane per pool worker
    /// (outside a pool the budget equals [`available_threads`]).
    pub fn new(split: &impl SplitAdjacency) -> Self {
        let n = split.n();
        Self {
            dist: (0..n).map(|_| AtomicMinU64::new(INF)).collect(),
            relaxed_at: vec![INF; n],
            queued: GenerationStamps::new(n),
            stamp_base: 1,
            buckets: vec![Vec::new(); Self::ring_len(split)],
            batch: Vec::new(),
            active: Vec::new(),
            removed: Vec::new(),
            relax: ShardBuffers::new(rayon::current_num_threads()),
        }
    }

    /// Cyclic ring length for `split`: `C/Δ + 2` slots.
    fn ring_len(split: &impl SplitAdjacency) -> usize {
        (split.max_weight() as u64 / split.delta().max(1) as u64 + 2) as usize
    }

    /// Prepares for a query over `split`: grows to its dimensions if needed
    /// (retaining capacity otherwise) and resets per-query state.
    fn reset(&mut self, split: &impl SplitAdjacency) {
        let n = split.n();
        if self.dist.len() != n {
            self.dist.resize_with(n, || AtomicMinU64::new(INF));
            self.relaxed_at.resize(n, INF);
        }
        let ring = Self::ring_len(split);
        if self.buckets.len() != ring {
            self.buckets.resize_with(ring, Vec::new);
        }
        if self.queued.len() < n {
            self.queued.reset(n);
        }
        for d in &self.dist {
            d.store(INF);
        }
        self.relaxed_at.fill(INF);
        // All buckets drain before a query returns; clear anyway so a
        // panicked query can't poison the next one.
        for b in &mut self.buckets {
            b.clear();
        }
    }

    /// The distance to `v` computed by the last query.
    #[inline]
    pub fn distance(&self, v: VertexId) -> Dist {
        self.dist[v as usize].load()
    }

    /// Copies the last query's distances into `out` (cleared first). Does
    /// not allocate when `out` already has the capacity.
    pub fn copy_distances_into(&self, out: &mut Vec<Dist>) {
        out.clear();
        out.extend(self.dist.iter().map(|d| d.load()));
    }

    /// The last query's distances as a fresh vector.
    pub fn to_distances(&self) -> Vec<Dist> {
        self.dist.iter().map(|d| d.load()).collect()
    }

    /// Heap bytes currently held (distances, buckets, stamps, lanes).
    pub fn heap_bytes(&self) -> usize {
        use mmt_platform::MemFootprint;
        self.dist.capacity() * std::mem::size_of::<AtomicMinU64>()
            + self.relaxed_at.heap_bytes()
            + self.queued.heap_bytes()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
            + self.relax.heap_bytes()
    }
}

/// The allocation-free Δ-stepping hot path over a pre-split CSR.
///
/// Light phases walk only each active vertex's light slice; the heavy phase
/// walks only the removed set's heavy slices. Parallel relaxations scatter
/// their improvements into `scratch`'s lane buffers; the serial drain
/// deduplicates with bucket stamps (a vertex sits in a bucket at most once)
/// and the `relaxed_at` guard skips any re-scanned vertex whose distance
/// did not improve since its last relaxation.
///
/// Distances are left in `scratch` (see [`DeltaScratch::distance`] /
/// [`DeltaScratch::copy_distances_into`]) so steady-state callers decide
/// where the output goes without a forced allocation.
///
/// Generic over [`SplitAdjacency`]: the same monomorphised kernel serves
/// the duplicating [`SplitCsr`] and the arena-backed
/// [`SplitView`](mmt_graph::SplitView) (whose light/heavy *order* differs
/// — weight-sorted vs source order — which this kernel never depends on).
pub fn delta_stepping_presplit<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    scratch: &mut DeltaScratch,
    counters: Option<&EventCounters>,
) {
    presplit_kernel::<S, 0>(split, source, None, None, scratch, counters);
}

/// Early-exit Δ-stepping for a single s–t query over a pre-split CSR.
///
/// Runs the identical kernel as [`delta_stepping_presplit`], but stops as
/// soon as the target's bucket settles instead of draining every bucket.
/// The exit test is sound because of the bucket invariant: when the kernel
/// finishes bucket `cur` (light fixpoint plus heavy phase) and advances,
/// every vertex whose final distance lies below `(cur + 1)·Δ` has been
/// settled — so once `dist(t)/Δ < cur` the tentative label at `t` can no
/// longer improve and equals the true distance. Unreachable targets are
/// still proven exactly: the bucket ring drains s's whole component and the
/// kernel returns with `dist(t) == INF`.
///
/// Returns `None` if `cancel` fired mid-query (the scratch stays reusable),
/// otherwise `Some(dist)` with [`INF`] meaning proven unreachable.
/// `counters` accounting is identical to the full-SSSP kernel, so
/// `arcs_scanned` directly measures the work the early exit avoided.
pub fn delta_stepping_st<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    target: VertexId,
    scratch: &mut DeltaScratch,
    counters: Option<&EventCounters>,
    cancel: Option<&CancelToken>,
) -> Option<Dist> {
    assert!((target as usize) < split.n(), "target out of range");
    let completed = presplit_kernel::<S, 0>(split, source, Some(target), cancel, scratch, counters);
    completed.then(|| scratch.distance(target))
}

/// [`delta_stepping_presplit`] with an unrolled read-ahead on the bucket
/// scan: each relaxation first loads the distance slot the loop will
/// `fetch_min` `8` iterations later, pulling its cache line while the
/// current relaxation's latency is in flight. The workspace forbids
/// `unsafe`, so this is a real (relaxed) load through
/// [`std::hint::black_box`] rather than a prefetch intrinsic — the
/// closest portable spelling. Same distances, same counter accounting
/// (`arcs_scanned` counts arcs, not read-ahead touches); `bench_layout`
/// measures the win/loss as the `delta-u64-ra` engine rows.
pub fn delta_stepping_presplit_readahead<S: SplitAdjacency + Sync>(
    split: &S,
    source: VertexId,
    scratch: &mut DeltaScratch,
    counters: Option<&EventCounters>,
) {
    presplit_kernel::<S, 8>(split, source, None, None, scratch, counters);
}

/// The shared kernel. With `target == None` it drains every bucket (full
/// SSSP); with a target it breaks once the target's bucket has settled.
/// Returns `false` iff `cancel` fired before the query finished; the stamp
/// epoch is advanced on *every* exit path so the scratch is always safe to
/// reuse.
fn presplit_kernel<S: SplitAdjacency + Sync, const AHEAD: usize>(
    split: &S,
    source: VertexId,
    target: Option<VertexId>,
    cancel: Option<&CancelToken>,
    scratch: &mut DeltaScratch,
    counters: Option<&EventCounters>,
) -> bool {
    assert!((source as usize) < split.n(), "source out of range");
    scratch.reset(split);
    let delta = split.delta().max(1) as u64;
    let DeltaScratch {
        dist,
        relaxed_at,
        queued,
        stamp_base,
        buckets,
        batch,
        active,
        removed,
        relax,
    } = scratch;
    let dist: &[AtomicMinU64] = dist;
    let nb = buckets.len() as u64;
    let slot_of = |b: u64| (b % nb) as usize;

    dist[source as usize].store(0);
    buckets[0].push(source);
    queued.mark_with(source as usize, *stamp_base);
    let mut pending = 1usize;
    let mut cur: u64 = 0; // absolute bucket index
    let mut completed = true;

    'outer: while pending > 0 {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            completed = false;
            break 'outer;
        }
        // Advance to the next non-empty slot; all entries (live or stale)
        // sit within the cyclic window [cur, cur + nb - 1].
        let mut scanned = 0u64;
        while buckets[slot_of(cur)].is_empty() {
            cur += 1;
            scanned += 1;
            assert!(scanned <= nb, "pending entries outside the cyclic window");
        }
        let slot = slot_of(cur);
        let cur_stamp = *stamp_base + cur;
        removed.clear();

        // Light phases: expand the current bucket to a fixpoint. Cancellation
        // is also polled per phase: with a huge Δ the whole query is one
        // bucket and the outer-loop poll alone would never fire.
        while !buckets[slot].is_empty() {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                completed = false;
                break 'outer;
            }
            std::mem::swap(batch, &mut buckets[slot]);
            pending -= batch.len();
            active.clear();
            for &v in batch.iter() {
                let vi = v as usize;
                if queued.stamp_of(vi) == cur_stamp {
                    queued.unmark(vi);
                }
                let d = dist[vi].load();
                // Stale (migrated to an earlier bucket) or unimproved since
                // its last relaxation: skip without touching any edges.
                if d / delta == cur && d < relaxed_at[vi] {
                    if relaxed_at[vi] == INF {
                        removed.push(v);
                    }
                    relaxed_at[vi] = d;
                    active.push(v);
                }
            }
            batch.clear();
            if active.is_empty() {
                continue;
            }
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
                let arcs = active
                    .iter()
                    .map(|&v| split.light(v).0.len() as u64)
                    .sum::<u64>();
                ev.arcs_scanned.add(arcs);
                ev.relaxations.add(arcs);
            }
            relax.scatter(active, |&u, lane| {
                let du = dist[u as usize].load();
                let (ts, ws) = split.light(u);
                relax_arcs::<AHEAD>(dist, du, ts, ws, |v, nd| lane.push((v, nd)));
            });
            let mut drained = 0u64;
            relax.drain(|(v, nd)| {
                drained += 1;
                let b = nd / delta;
                debug_assert!(b >= cur);
                if queued.mark_with(v as usize, *stamp_base + b) {
                    buckets[slot_of(b)].push(v);
                    pending += 1;
                }
            });
            if let Some(ev) = counters {
                ev.improvements.add(drained);
            }
        }

        // Heavy phase: each settled vertex relaxes its heavy edges once.
        if !removed.is_empty() {
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
                ev.settled.add(removed.len() as u64);
                let arcs = removed
                    .iter()
                    .map(|&v| split.heavy(v).0.len() as u64)
                    .sum::<u64>();
                ev.arcs_scanned.add(arcs);
                ev.relaxations.add(arcs);
            }
            relax.scatter(removed, |&u, lane| {
                let du = dist[u as usize].load();
                let (ts, ws) = split.heavy(u);
                relax_arcs::<AHEAD>(dist, du, ts, ws, |v, nd| lane.push((v, nd)));
            });
            let mut drained = 0u64;
            relax.drain(|(v, nd)| {
                drained += 1;
                let b = nd / delta;
                debug_assert!(b > cur);
                if queued.mark_with(v as usize, *stamp_base + b) {
                    buckets[slot_of(b)].push(v);
                    pending += 1;
                }
            });
            if let Some(ev) = counters {
                ev.improvements.add(drained);
            }
        }
        cur += 1;
        // Early exit: bucket `cur - 1` has settled, so any vertex with a
        // tentative distance in an earlier bucket is final.
        if let Some(t) = target {
            let dt = dist[t as usize].load();
            if dt != INF && dt / delta < cur {
                break;
            }
        }
    }
    // Every pop unmarks its live stamp, but advance past this query's stamp
    // range anyway so a future query can never collide with a stale stamp.
    // Every stamp this query marked is at most `stamp_base + cur + nb - 1`
    // on every exit path (normal, early-exit, cancelled), so this advance
    // keeps the scratch reusable even when buckets were left undrained.
    *stamp_base += cur + nb + 1;
    completed
}

/// The seed Δ-stepping kernel, kept verbatim as the *before* side of the
/// hot-path comparison: it re-filters light/heavy per relaxation, rebuilds
/// request vectors with `collect()` every phase, and deduplicates the
/// removed set with `sort + dedup`. `bench_hotpath` measures it against
/// [`delta_stepping_presplit`] with the counting allocator; the verify
/// harness runs it as one more differential engine.
pub fn delta_stepping_reference(g: &CsrGraph, source: VertexId, cfg: DeltaConfig) -> Vec<Dist> {
    delta_stepping_reference_counted(g, source, cfg, None)
}

/// As [`delta_stepping_reference`], with optional [`EventCounters`]
/// (relaxations = full degree of every expanded bucket entry, the seed
/// accounting — duplicate entries count double, which is exactly the
/// re-scan waste the regression tests pin down).
pub fn delta_stepping_reference_counted(
    g: &CsrGraph,
    source: VertexId,
    cfg: DeltaConfig,
    counters: Option<&EventCounters>,
) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let delta = cfg.delta().max(1);
    let nb = (g.max_weight() as u64 / delta + 2) as usize;
    let dist: Vec<AtomicMinU64> = (0..g.n()).map(|_| AtomicMinU64::new(INF)).collect();
    dist[source as usize].store(0);

    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); nb];
    buckets[0].push(source);
    let mut pending = 1usize;
    let mut cur: u64 = 0; // absolute bucket index

    let bucket_of = |d: Dist| d / delta;
    let slot_of = |b: u64| (b % nb as u64) as usize;

    while pending > 0 {
        let mut scanned = 0;
        while buckets[slot_of(cur)].is_empty() {
            cur += 1;
            scanned += 1;
            assert!(scanned <= nb, "pending entries outside the cyclic window");
        }
        let slot = slot_of(cur);
        let mut removed: Vec<VertexId> = Vec::new();

        // Light phases: expand the current bucket to a fixpoint.
        while !buckets[slot].is_empty() {
            let batch = std::mem::take(&mut buckets[slot]);
            pending -= batch.len();
            let active: Vec<VertexId> = batch
                .into_iter()
                .filter(|&v| bucket_of(dist[v as usize].load()) == cur)
                .collect();
            if active.is_empty() {
                continue;
            }
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
            }
            let improved = relax_batch(g, &dist, &active, |w| w as u64 <= delta);
            if let Some(ev) = counters {
                let arcs: u64 = active.iter().map(|&v| g.degree(v) as u64).sum();
                ev.arcs_scanned.add(arcs);
                ev.relaxations.add(arcs);
                ev.improvements.add(improved.len() as u64);
            }
            removed.extend(active);
            for (v, nd) in improved {
                buckets[slot_of(bucket_of(nd))].push(v);
                pending += 1;
            }
        }

        // Heavy phase: each removed vertex relaxes its heavy edges once.
        removed.sort_unstable();
        removed.dedup();
        if let Some(ev) = counters {
            ev.bucket_expansions.bump();
            ev.settled.add(removed.len() as u64);
        }
        let improved = relax_batch(g, &dist, &removed, |w| w as u64 > delta);
        for (v, nd) in improved {
            debug_assert!(bucket_of(nd) > cur);
            buckets[slot_of(bucket_of(nd))].push(v);
            pending += 1;
        }
        cur += 1;
    }
    dist.into_iter().map(|d| d.load()).collect()
}

/// Generates relaxation requests for `batch` over edges passing `keep`, and
/// applies them with `fetch_min`. Returns the `(vertex, new_dist)` pairs
/// that strictly improved (possibly with duplicates per vertex; stale
/// bucket entries are filtered at expansion time).
fn relax_batch(
    g: &CsrGraph,
    dist: &[AtomicMinU64],
    batch: &[VertexId],
    keep: impl Fn(u32) -> bool + Sync + Send,
) -> Vec<(VertexId, Dist)> {
    let keep = &keep;
    batch
        .par_iter()
        .flat_map_iter(move |&u| {
            let du = dist[u as usize].load();
            g.edges_from(u).filter_map(move |(v, w)| {
                if keep(w) {
                    Some((v, du + w as Dist))
                } else {
                    None
                }
            })
        })
        .filter(|&(v, nd)| dist[v as usize].fetch_min(nd))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    fn check_graph(el: &EdgeList, deltas: &[u64]) {
        let g = CsrGraph::from_edge_list(el);
        let sources: Vec<u32> = [0usize, el.n / 2, el.n - 1]
            .iter()
            .map(|&s| s as u32)
            .collect();
        for &s in &sources {
            let want = dijkstra(&g, s);
            for &delta in deltas {
                let got = delta_stepping(&g, s, DeltaConfig::new(delta));
                assert_eq!(got, want, "delta={delta} source={s}");
                let reference = delta_stepping_reference(&g, s, DeltaConfig::new(delta));
                assert_eq!(reference, want, "reference delta={delta} source={s}");
            }
        }
    }

    #[test]
    fn path_graph_all_deltas() {
        check_graph(&shapes::path(30, 5), &[1, 2, 5, 100]);
    }

    #[test]
    fn star_and_complete() {
        check_graph(&shapes::star(20, 7), &[1, 7, 50]);
        check_graph(&shapes::complete(12, 3), &[1, 3, 10]);
    }

    #[test]
    fn random_workloads_match_dijkstra() {
        for (class, wd) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Random, WeightDist::PolyLog),
            (GraphClass::Rmat, WeightDist::Uniform),
            (GraphClass::Rmat, WeightDist::PolyLog),
        ] {
            let mut spec = WorkloadSpec::new(class, wd, 8, 8);
            spec.seed = 23;
            let el = spec.generate();
            let g = CsrGraph::from_edge_list(&el);
            let auto = DeltaConfig::auto(&g);
            let adaptive = DeltaConfig::adaptive(&g);
            for s in [0u32, 17, 200] {
                let want = dijkstra(&g, s);
                assert_eq!(delta_stepping(&g, s, auto), want, "{}", spec.name());
                assert_eq!(
                    delta_stepping(&g, s, adaptive),
                    want,
                    "{} (adaptive delta)",
                    spec.name()
                );
                assert_eq!(
                    delta_stepping(&g, s, DeltaConfig::new(1)),
                    want,
                    "{} (delta 1 = parallel Dijkstra mode)",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_across_queries_and_graphs() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 7, 9);
        spec.seed = 99;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let split = SplitCsr::new(&g, adaptive_delta(&g).min(u32::MAX as u64) as u32);
        let mut scratch = DeltaScratch::new(&split);
        let mut out = Vec::new();
        for s in [0u32, 3, 50, 100, 3, 0] {
            delta_stepping_presplit(&split, s, &mut scratch, None);
            scratch.copy_distances_into(&mut out);
            assert_eq!(out, dijkstra(&g, s), "source {s}");
        }
        // The same scratch must also survive a move to a differently-sized
        // split (it regrows rather than asserting).
        let small = CsrGraph::from_edge_list(&shapes::path(5, 2));
        let small_split = SplitCsr::new(&small, 2);
        delta_stepping_presplit(&small_split, 0, &mut scratch, None);
        scratch.copy_distances_into(&mut out);
        assert_eq!(out, dijkstra(&small, 0));
    }

    #[test]
    fn arena_view_matches_duplicating_split() {
        use mmt_graph::CsrArena;
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        spec.seed = 41;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let arena = CsrArena::new(&g);
        for delta in [1u32, adaptive_delta(&g) as u32, 64] {
            let dup = SplitCsr::new(&g, delta);
            let view = arena.split(delta);
            let mut scratch = DeltaScratch::new(&view);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for s in [0u32, 17, 200] {
                delta_stepping_presplit(&view, s, &mut scratch, None);
                scratch.copy_distances_into(&mut a);
                delta_stepping_presplit(&dup, s, &mut scratch, None);
                scratch.copy_distances_into(&mut b);
                assert_eq!(a, b, "delta={delta} source={s}");
                assert_eq!(a, dijkstra(&g, s), "delta={delta} source={s}");
            }
        }
    }

    #[test]
    fn disconnected_leaves_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 6)]));
        let d = delta_stepping(&g, 0, DeltaConfig::new(3));
        assert_eq!(d, vec![0, 6, INF, INF]);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            2,
            [(0, 0, 4), (0, 1, 9), (0, 1, 2)],
        ));
        assert_eq!(delta_stepping(&g, 0, DeltaConfig::new(4)), vec![0, 2]);
    }

    #[test]
    fn default_delta_heuristic() {
        let g = CsrGraph::from_edge_list(&shapes::complete(10, 64));
        // avg degree 9, C = 64 -> delta = 64 / 9 = 7
        assert_eq!(default_delta(&g), 7);
        let empty = CsrGraph::from_edge_list(&EdgeList::new(3));
        assert_eq!(default_delta(&empty), 1);
    }

    #[test]
    fn adaptive_delta_tracks_weight_mass() {
        // Uniform weights: adaptive ≈ classic (avg = C/2 ⇒ 2·avg = C).
        let uniform = CsrGraph::from_edge_list(&shapes::complete(10, 64));
        let avg_w = uniform.total_arc_weight() / uniform.num_arcs() as u64;
        assert_eq!(adaptive_delta(&uniform), (2 * avg_w / 9).max(1));
        // Heavy tail: one huge edge must not blow the bucket width up the
        // way C/avg_degree does.
        let mut triples: Vec<(u32, u32, u32)> = (0..499u32).map(|i| (i, i + 1, 1)).collect();
        triples.push((0, 499, 1_000_000));
        let skewed = CsrGraph::from_edge_list(&EdgeList::from_triples(500, triples));
        assert!(adaptive_delta(&skewed) < default_delta(&skewed) / 100);
        let empty = CsrGraph::from_edge_list(&EdgeList::new(3));
        assert_eq!(adaptive_delta(&empty), 1);
    }

    #[test]
    fn st_matches_dijkstra_at_the_target() {
        for class in [GraphClass::Road, GraphClass::Random] {
            let mut spec = WorkloadSpec::new(class, WeightDist::Uniform, 8, 6);
            spec.seed = 7;
            let g = CsrGraph::from_edge_list(&spec.generate());
            for delta in [
                1u32,
                adaptive_delta(&g).min(u32::MAX as u64) as u32,
                1 << 20,
            ] {
                let split = SplitCsr::new(&g, delta.max(1));
                let mut scratch = DeltaScratch::new(&split);
                for s in [0u32, 100] {
                    let want = dijkstra(&g, s);
                    for t in [0u32, 1, 17, 128, 255] {
                        let got = delta_stepping_st(&split, s, t, &mut scratch, None, None);
                        assert_eq!(
                            got,
                            Some(want[t as usize]),
                            "{} delta={delta} s={s} t={t}",
                            spec.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn st_source_equals_target_and_unreachable() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(5, [(0, 1, 3), (2, 3, 4)]));
        let split = SplitCsr::new(&g, 2);
        let mut scratch = DeltaScratch::new(&split);
        assert_eq!(
            delta_stepping_st(&split, 1, 1, &mut scratch, None, None),
            Some(0)
        );
        // Unreachable is proven by draining the component, not guessed.
        assert_eq!(
            delta_stepping_st(&split, 0, 3, &mut scratch, None, None),
            Some(INF)
        );
        assert_eq!(
            delta_stepping_st(&split, 0, 4, &mut scratch, None, None),
            Some(INF)
        );
        assert_eq!(
            delta_stepping_st(&split, 0, 1, &mut scratch, None, None),
            Some(3)
        );
    }

    #[test]
    fn st_cancel_interrupts_and_scratch_survives() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 6);
        spec.seed = 5;
        let g = CsrGraph::from_edge_list(&spec.generate());
        // A huge Δ makes the whole query one bucket, exercising the
        // per-light-phase poll path.
        for delta in [4u32, 1 << 24] {
            let split = SplitCsr::new(&g, delta);
            let mut scratch = DeltaScratch::new(&split);
            let token = CancelToken::new();
            token.cancel();
            assert_eq!(
                delta_stepping_st(&split, 0, 200, &mut scratch, None, Some(&token)),
                None,
                "delta={delta}"
            );
            // Reuse after interruption must still be exact (stamp epoch
            // advanced on the cancelled exit path).
            let got = delta_stepping_st(&split, 0, 200, &mut scratch, None, None);
            assert_eq!(got, Some(dijkstra(&g, 0)[200]), "delta={delta}");
        }
    }

    #[test]
    fn st_early_exit_scans_fewer_arcs_than_full_sssp() {
        let spec = WorkloadSpec::new(GraphClass::Road, WeightDist::Uniform, 10, 6);
        let g = CsrGraph::from_edge_list(&spec.generate());
        let delta = adaptive_delta(&g).min(u32::MAX as u64) as u32;
        let split = SplitCsr::new(&g, delta.max(1));
        let mut scratch = DeltaScratch::new(&split);
        let full = mmt_platform::EventCounters::default();
        delta_stepping_presplit(&split, 0, &mut scratch, Some(&full));
        let near = mmt_platform::EventCounters::default();
        // Target a grid neighbour: its bucket settles almost immediately.
        let d = delta_stepping_st(&split, 0, 1, &mut scratch, Some(&near), None).unwrap();
        assert_eq!(d, dijkstra(&g, 0)[1]);
        let full_arcs = full.snapshot().arcs_scanned;
        let near_arcs = near.snapshot().arcs_scanned;
        assert!(
            near_arcs < full_arcs,
            "early exit scanned {near_arcs} arcs vs {full_arcs} for full SSSP"
        );
    }

    #[test]
    fn counters_record_activity() {
        let g = CsrGraph::from_edge_list(&shapes::path(20, 3));
        let ev = EventCounters::new();
        let d = super::delta_stepping_counted(&g, 0, DeltaConfig::new(6), Some(&ev));
        assert_eq!(d, dijkstra(&g, 0));
        assert_eq!(ev.settled.get(), 20);
        assert!(ev.bucket_expansions.get() > 0);
        assert_eq!(ev.relaxations.get() as usize, g.num_arcs());
        assert_eq!(ev.arcs_scanned.get(), ev.relaxations.get());
        assert!(ev.improvements.get() >= 19);
    }

    /// Regression for the `removed` re-scan bug: a vertex queued into a
    /// future bucket twice (here: vertex 1 enters bucket 2 first via the
    /// heavy edge (0,1,25), then again via the light edge (2,1,9) after
    /// vertex 2 settles in bucket 1) used to be expanded twice even though
    /// its distance was final — the seed kernel walks its edges once per
    /// stale entry. The stamped kernel relaxes every arc exactly once.
    #[test]
    fn no_rerelax_of_requeued_vertices_on_a_cycle() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            3,
            [(0, 1, 25), (0, 2, 12), (2, 1, 9)],
        ));
        let want = dijkstra(&g, 0);
        let cfg = DeltaConfig::new(10);

        let ev_new = EventCounters::new();
        let got = super::delta_stepping_counted(&g, 0, cfg, Some(&ev_new));
        assert_eq!(got, want);
        assert_eq!(
            ev_new.relaxations.get() as usize,
            g.num_arcs(),
            "stamped kernel walks each arc exactly once"
        );
        assert_eq!(ev_new.settled.get(), 3);

        let ev_ref = EventCounters::new();
        let got = super::delta_stepping_reference_counted(&g, 0, cfg, Some(&ev_ref));
        assert_eq!(got, want);
        assert!(
            ev_ref.relaxations.get() as usize > g.num_arcs(),
            "seed kernel re-expands the duplicate bucket entry (got {})",
            ev_ref.relaxations.get()
        );
        assert_eq!(ev_ref.settled.get(), 3);
    }

    /// The read-ahead kernel is behaviourally identical to the plain one:
    /// same distances and the same counter totals (the read-ahead touch is
    /// not an arc scan), across degree shapes that exercise both the
    /// `i + AHEAD < len` window and the short-slice fallback.
    #[test]
    fn readahead_matches_plain_presplit_distances_and_counters() {
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        spec.seed = 13;
        let dense = CsrGraph::from_edge_list(&spec.generate());
        for g in [&dense, &CsrGraph::from_edge_list(&shapes::path(40, 5))] {
            let delta = adaptive_delta(g).min(u32::MAX as u64) as u32;
            let split = SplitCsr::new(g, delta.max(1));
            let mut scratch = DeltaScratch::new(&split);
            for s in [0u32, g.n() as u32 / 2] {
                let ev_plain = EventCounters::new();
                super::delta_stepping_presplit(&split, s, &mut scratch, Some(&ev_plain));
                let plain = scratch.to_distances();
                let ev_ra = EventCounters::new();
                super::delta_stepping_presplit_readahead(&split, s, &mut scratch, Some(&ev_ra));
                assert_eq!(scratch.to_distances(), plain, "source {s}");
                assert_eq!(plain, dijkstra(g, s), "source {s}");
                assert_eq!(ev_ra.relaxations.get(), ev_plain.relaxations.get());
                assert_eq!(ev_ra.arcs_scanned.get(), ev_plain.arcs_scanned.get());
                assert_eq!(ev_ra.settled.get(), ev_plain.settled.get());
            }
        }
    }

    #[test]
    fn huge_delta_degenerates_to_bellman_ford_bucket() {
        let g = CsrGraph::from_edge_list(&shapes::path(10, 3));
        let d = delta_stepping(&g, 0, DeltaConfig::new(u64::MAX / 4));
        assert_eq!(d, dijkstra(&g, 0));
    }
}
