//! Parallel Δ-stepping (Meyer & Sanders), the paper's parallel baseline.
//!
//! Vertices are kept in buckets of width Δ by tentative distance. The
//! current bucket is expanded in *light phases* (edges of weight ≤ Δ, which
//! may re-insert into the same bucket) until stable, then the accumulated
//! removed set relaxes its *heavy* edges (weight > Δ) in one parallel pass.
//! Request generation and relaxation (`fetch_min`) run on the rayon pool;
//! bucket maintenance is serial, with stale entries discarded lazily — the
//! same engineering shape as the MTA-2 implementation of Madduri et al.
//! that the paper benchmarks against.
//!
//! Buckets are a cyclic array of `C/Δ + 2` slots: every queued tentative
//! distance lies within `C + Δ` of the current bucket's base, so live
//! entries never collide across cycles.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use mmt_platform::AtomicMinU64;
use rayon::prelude::*;

/// Δ-stepping parameters. Construct with [`DeltaConfig::new`] or
/// [`DeltaConfig::auto`] and adjust via the chainable
/// [`with_delta`](DeltaConfig::with_delta):
///
/// ```
/// use mmt_baselines::DeltaConfig;
/// let cfg = DeltaConfig::new(8).with_delta(16);
/// assert_eq!(cfg.delta(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Bucket width Δ ≥ 1.
    #[deprecated(since = "0.2.0", note = "use DeltaConfig::new/with_delta and delta()")]
    pub delta: u64,
}

#[allow(deprecated)]
impl DeltaConfig {
    /// A config with the given bucket width Δ (clamped to ≥ 1).
    pub fn new(delta: u64) -> Self {
        Self {
            delta: delta.max(1),
        }
    }

    /// Uses the standard heuristic Δ = C / average-degree (see
    /// [`default_delta`]).
    pub fn auto(g: &CsrGraph) -> Self {
        Self::new(default_delta(g))
    }

    /// Returns a copy with the bucket width replaced (clamped to ≥ 1).
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.delta = delta.max(1);
        self
    }

    /// The bucket width Δ.
    pub fn delta(&self) -> u64 {
        self.delta
    }
}

/// The Meyer–Sanders heuristic bucket width: `max(1, C / avg_degree)`,
/// which bounds the expected number of re-relaxations per light phase.
pub fn default_delta(g: &CsrGraph) -> u64 {
    if g.n() == 0 || g.num_arcs() == 0 {
        return 1;
    }
    let avg_degree = (g.num_arcs() as u64 / g.n() as u64).max(1);
    (g.max_weight() as u64 / avg_degree).max(1)
}

/// Single-source shortest paths by parallel Δ-stepping.
///
/// ```
/// use mmt_baselines::{delta_stepping, DeltaConfig};
/// use mmt_graph::{types::EdgeList, CsrGraph};
///
/// let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
///     3,
///     [(0, 1, 4), (1, 2, 4), (0, 2, 9)],
/// ));
/// let dist = delta_stepping(&g, 0, DeltaConfig::auto(&g));
/// assert_eq!(dist, vec![0, 4, 8]);
/// ```
pub fn delta_stepping(g: &CsrGraph, source: VertexId, cfg: DeltaConfig) -> Vec<Dist> {
    delta_stepping_counted(g, source, cfg, None)
}

/// As [`delta_stepping`], optionally filling in [`EventCounters`] (bucket
/// expansions = light phases + heavy phases; relaxations; improvements;
/// settled ≈ vertices removed from buckets) so Δ-stepping runs can be
/// compared against instrumented Thorup runs on equal terms.
pub fn delta_stepping_counted(
    g: &CsrGraph,
    source: VertexId,
    cfg: DeltaConfig,
    counters: Option<&mmt_platform::EventCounters>,
) -> Vec<Dist> {
    assert!((source as usize) < g.n(), "source out of range");
    let delta = cfg.delta().max(1);
    let nb = (g.max_weight() as u64 / delta + 2) as usize;
    let dist: Vec<AtomicMinU64> = (0..g.n()).map(|_| AtomicMinU64::new(INF)).collect();
    dist[source as usize].store(0);

    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); nb];
    buckets[0].push(source);
    let mut pending = 1usize;
    let mut cur: u64 = 0; // absolute bucket index

    let bucket_of = |d: Dist| d / delta;
    let slot_of = |b: u64| (b % nb as u64) as usize;

    while pending > 0 {
        // Advance to the next non-empty slot; all entries (live or stale)
        // sit within the cyclic window [cur, cur + nb - 1].
        let mut scanned = 0;
        while buckets[slot_of(cur)].is_empty() {
            cur += 1;
            scanned += 1;
            assert!(scanned <= nb, "pending entries outside the cyclic window");
        }
        let slot = slot_of(cur);
        let mut removed: Vec<VertexId> = Vec::new();

        // Light phases: expand the current bucket to a fixpoint.
        while !buckets[slot].is_empty() {
            let batch = std::mem::take(&mut buckets[slot]);
            pending -= batch.len();
            let active: Vec<VertexId> = batch
                .into_iter()
                .filter(|&v| bucket_of(dist[v as usize].load()) == cur)
                .collect();
            if active.is_empty() {
                continue;
            }
            if let Some(ev) = counters {
                ev.bucket_expansions.bump();
            }
            let improved = relax_batch(g, &dist, &active, |w| w as u64 <= delta);
            if let Some(ev) = counters {
                ev.relaxations
                    .add(active.iter().map(|&v| g.degree(v) as u64).sum());
                ev.improvements.add(improved.len() as u64);
            }
            removed.extend(active);
            for (v, nd) in improved {
                buckets[slot_of(bucket_of(nd))].push(v);
                pending += 1;
            }
        }

        // Heavy phase: each removed vertex relaxes its heavy edges once.
        removed.sort_unstable();
        removed.dedup();
        if let Some(ev) = counters {
            ev.bucket_expansions.bump();
            ev.settled.add(removed.len() as u64);
        }
        let improved = relax_batch(g, &dist, &removed, |w| w as u64 > delta);
        for (v, nd) in improved {
            debug_assert!(bucket_of(nd) > cur);
            buckets[slot_of(bucket_of(nd))].push(v);
            pending += 1;
        }
        cur += 1;
    }
    dist.into_iter().map(|d| d.load()).collect()
}

/// Generates relaxation requests for `batch` over edges passing `keep`, and
/// applies them with `fetch_min`. Returns the `(vertex, new_dist)` pairs
/// that strictly improved (possibly with duplicates per vertex; stale
/// bucket entries are filtered at expansion time).
fn relax_batch(
    g: &CsrGraph,
    dist: &[AtomicMinU64],
    batch: &[VertexId],
    keep: impl Fn(u32) -> bool + Sync + Send,
) -> Vec<(VertexId, Dist)> {
    let keep = &keep;
    batch
        .par_iter()
        .flat_map_iter(move |&u| {
            let du = dist[u as usize].load();
            g.edges_from(u).filter_map(move |(v, w)| {
                if keep(w) {
                    Some((v, du + w as Dist))
                } else {
                    None
                }
            })
        })
        .filter(|&(v, nd)| dist[v as usize].fetch_min(nd))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    fn check_graph(el: &EdgeList, deltas: &[u64]) {
        let g = CsrGraph::from_edge_list(el);
        let sources: Vec<u32> = [0usize, el.n / 2, el.n - 1]
            .iter()
            .map(|&s| s as u32)
            .collect();
        for &s in &sources {
            let want = dijkstra(&g, s);
            for &delta in deltas {
                let got = delta_stepping(&g, s, DeltaConfig::new(delta));
                assert_eq!(got, want, "delta={delta} source={s}");
            }
        }
    }

    #[test]
    fn path_graph_all_deltas() {
        check_graph(&shapes::path(30, 5), &[1, 2, 5, 100]);
    }

    #[test]
    fn star_and_complete() {
        check_graph(&shapes::star(20, 7), &[1, 7, 50]);
        check_graph(&shapes::complete(12, 3), &[1, 3, 10]);
    }

    #[test]
    fn random_workloads_match_dijkstra() {
        for (class, wd) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Random, WeightDist::PolyLog),
            (GraphClass::Rmat, WeightDist::Uniform),
            (GraphClass::Rmat, WeightDist::PolyLog),
        ] {
            let mut spec = WorkloadSpec::new(class, wd, 8, 8);
            spec.seed = 23;
            let el = spec.generate();
            let g = CsrGraph::from_edge_list(&el);
            let auto = DeltaConfig::auto(&g);
            for s in [0u32, 17, 200] {
                let want = dijkstra(&g, s);
                assert_eq!(delta_stepping(&g, s, auto), want, "{}", spec.name());
                assert_eq!(
                    delta_stepping(&g, s, DeltaConfig::new(1)),
                    want,
                    "{} (delta 1 = parallel Dijkstra mode)",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn disconnected_leaves_inf() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 6)]));
        let d = delta_stepping(&g, 0, DeltaConfig::new(3));
        assert_eq!(d, vec![0, 6, INF, INF]);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            2,
            [(0, 0, 4), (0, 1, 9), (0, 1, 2)],
        ));
        assert_eq!(delta_stepping(&g, 0, DeltaConfig::new(4)), vec![0, 2]);
    }

    #[test]
    fn default_delta_heuristic() {
        let g = CsrGraph::from_edge_list(&shapes::complete(10, 64));
        // avg degree 9, C = 64 -> delta = 64 / 9 = 7
        assert_eq!(default_delta(&g), 7);
        let empty = CsrGraph::from_edge_list(&EdgeList::new(3));
        assert_eq!(default_delta(&empty), 1);
    }

    #[test]
    fn counters_record_activity() {
        use mmt_platform::EventCounters;
        let g = CsrGraph::from_edge_list(&shapes::path(20, 3));
        let ev = EventCounters::new();
        let d = super::delta_stepping_counted(&g, 0, DeltaConfig::new(6), Some(&ev));
        assert_eq!(d, dijkstra(&g, 0));
        assert_eq!(ev.settled.get(), 20);
        assert!(ev.bucket_expansions.get() > 0);
        assert_eq!(ev.relaxations.get() as usize, g.num_arcs());
        assert!(ev.improvements.get() >= 19);
    }

    #[test]
    fn huge_delta_degenerates_to_bellman_ford_bucket() {
        let g = CsrGraph::from_edge_list(&shapes::path(10, 3));
        let d = delta_stepping(&g, 0, DeltaConfig::new(u64::MAX / 4));
        assert_eq!(d, dijkstra(&g, 0));
    }
}
