//! Property tests: on arbitrary graphs, all three builders produce
//! identical hierarchies that pass the full semantic validator.

use mmt_ch::stats::canonical_signature;
use mmt_ch::{build_parallel, build_serial, build_via_mst, ChMode};
use mmt_graph::types::{Edge, EdgeList};
use mmt_graph::CsrGraph;
use proptest::prelude::*;

fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (1usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..300).prop_map(|(u, v, w)| Edge::new(u, v, w));
        proptest::collection::vec(edge, 0..120).prop_map(move |edges| EdgeList { n, edges })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builders_agree_and_validate(el in arb_edge_list()) {
        let g = CsrGraph::from_edge_list(&el);
        let serial = build_serial(&el, ChMode::Collapsed);
        serial.validate(Some(&g)).map_err(TestCaseError::fail)?;
        let parallel = build_parallel(&el);
        let mst = build_via_mst(&el, ChMode::Collapsed);
        let sig = canonical_signature(&serial);
        prop_assert_eq!(&sig, &canonical_signature(&parallel));
        prop_assert_eq!(&sig, &canonical_signature(&mst));
    }

    #[test]
    fn faithful_validates_and_dominates(el in arb_edge_list()) {
        let g = CsrGraph::from_edge_list(&el);
        let faithful = build_serial(&el, ChMode::Faithful);
        faithful.validate(Some(&g)).map_err(TestCaseError::fail)?;
        let collapsed = build_serial(&el, ChMode::Collapsed);
        prop_assert!(faithful.num_nodes() >= collapsed.num_nodes());
        // Collapsed hierarchies never exceed 2n - 1 nodes.
        prop_assert!(collapsed.num_nodes() <= 2 * el.n);
    }

    #[test]
    fn collapsed_internal_nodes_have_fanout(el in arb_edge_list()) {
        let ch = build_serial(&el, ChMode::Collapsed);
        for node in ch.n() as u32..ch.num_nodes() as u32 {
            prop_assert!(ch.children(node).len() >= 2);
        }
    }

    #[test]
    fn clustering_matches_cc_oracle(el in arb_edge_list(), level in 0u32..11) {
        use mmt_cc::{connected_components, CcAlgorithm, EdgeSet};
        use mmt_graph::subgraph::edges_below;
        let ch = build_serial(&el, ChMode::Collapsed);
        let got = mmt_ch::clusters_at_level(&ch, level);
        let filtered = edges_below(&el, 1u32 << level.min(31));
        let want = connected_components(
            EdgeSet { n: el.n, edges: &filtered.edges },
            CcAlgorithm::SerialDsu,
        );
        prop_assert_eq!(&got.labels, &want.labels);
        prop_assert_eq!(got.count, want.count);
    }

    #[test]
    fn merge_threshold_is_tight_dendrogram_height(el in arb_edge_list(), a in 0u32..40, b in 0u32..40) {
        let n = el.n as u32;
        let (a, b) = (a % n, b % n);
        let ch = build_serial(&el, ChMode::Collapsed);
        match mmt_ch::merge_threshold(&ch, a, b) {
            None => {
                // never in one cluster at any level
                let c = mmt_ch::clusters_at_level(&ch, 33);
                prop_assert!(!c.same(a, b));
            }
            Some(t) => {
                let level = t.trailing_zeros();
                prop_assert!(mmt_ch::clusters_at_level(&ch, level).same(a, b));
                if a != b && level > 0 {
                    prop_assert!(!mmt_ch::clusters_at_level(&ch, level - 1).same(a, b));
                }
            }
        }
    }
}
