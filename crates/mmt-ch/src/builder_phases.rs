//! Parallel Component Hierarchy construction — the paper's Algorithm 1.
//!
//! The CH is built "naively in `log C` phases" from the original graph
//! (not the minimum spanning tree — the paper found that faster in
//! practice; the MST route is kept in [`crate::builder_mst`] as the
//! ablation). Each phase `i`:
//!
//! 1. restrict to edges of weight `< 2^i` (on the contracted graph, all
//!    surviving edges already have weight `≥ 2^{i-1}`, so this admits one
//!    new weight band per phase);
//! 2. find connected components **in parallel** (MTGL's "bully" algorithm
//!    in the paper; our label-propagation equivalent by default);
//! 3. create a CH node per component and contract, relabelling the
//!    surviving heavier edges through the component map.
//!
//! All bulk steps (filtering, relabelling, deduplication sort) are rayon
//! parallel, so the construction scales with the pool it runs in — this is
//! the code path behind the paper's Table 3 and the top half of Figure 4.

use crate::builder_dsu::phase_of;
use crate::hierarchy::{ChAssembler, ComponentHierarchy};
use crate::ChMode;
use mmt_cc::{connected_components, CcAlgorithm, Components, EdgeSet};
use mmt_graph::types::{Edge, EdgeList};
use rayon::prelude::*;

/// Configuration for the parallel builder.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBuildConfig {
    /// Chain handling (faithful Algorithm 1 vs collapsed).
    pub mode: ChMode,
    /// Which parallel CC algorithm the phases run.
    pub cc: CcAlgorithm,
    /// Deduplicate parallel edges between the same contracted pair after
    /// each phase (keeps intermediate graphs small; semantics unchanged
    /// because only the minimum-weight copy can affect connectivity).
    pub dedup: bool,
}

impl Default for ParallelBuildConfig {
    fn default() -> Self {
        Self {
            mode: ChMode::Collapsed,
            cc: CcAlgorithm::LabelPropagation,
            dedup: true,
        }
    }
}

/// Per-phase observability of a parallel construction: what Algorithm 1
/// actually did, phase by phase — the data behind the paper's Table 3
/// family-to-family differences (small-`C` families run few phases over
/// fast-shrinking graphs; large-`C` families run `log C` of them).
#[derive(Debug, Clone, Default)]
pub struct BuildTrace {
    /// One entry per executed phase.
    pub phases: Vec<PhaseTrace>,
}

/// Statistics of one construction phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTrace {
    /// Phase index `i` (edges of weight `< 2^i` admitted).
    pub phase: u32,
    /// Super-vertices entering the phase.
    pub vertices_in: usize,
    /// Edges admitted (weight in `[2^{i-1}, 2^i)` after contraction).
    pub light_edges: usize,
    /// Components found (= super-vertices leaving the phase).
    pub components: usize,
    /// Seconds spent in the phase.
    pub seconds: f64,
}

impl BuildTrace {
    /// Total construction seconds across phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// The phase that dominated the construction, if any ran.
    pub fn slowest_phase(&self) -> Option<&PhaseTrace> {
        self.phases
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }
}

/// Builds the CH with the default configuration.
pub fn build_parallel(el: &EdgeList) -> ComponentHierarchy {
    build_parallel_with(el, ParallelBuildConfig::default())
}

/// Builds the CH with an explicit configuration.
pub fn build_parallel_with(el: &EdgeList, cfg: ParallelBuildConfig) -> ComponentHierarchy {
    build_parallel_impl(el, cfg, None)
}

/// As [`build_parallel_with`], also returning the per-phase trace.
pub fn build_parallel_traced(
    el: &EdgeList,
    cfg: ParallelBuildConfig,
) -> (ComponentHierarchy, BuildTrace) {
    let mut trace = BuildTrace::default();
    let ch = build_parallel_impl(el, cfg, Some(&mut trace));
    (ch, trace)
}

fn build_parallel_impl(
    el: &EdgeList,
    cfg: ParallelBuildConfig,
    mut trace: Option<&mut BuildTrace>,
) -> ComponentHierarchy {
    let n = el.n;
    if n == 0 {
        let mut asm = ChAssembler::new(1);
        asm.add_node(0, vec![0]);
        return asm.finish();
    }
    let mut asm = ChAssembler::new(n);
    let max_phase = el
        .edges
        .par_iter()
        .map(|e| phase_of(e.w))
        .max()
        .unwrap_or(0);

    // Contracted-graph state: `cur_edges` over `cur_n` super-vertices, and
    // the CH node each super-vertex currently stands for.
    let mut cur_edges: Vec<Edge> = el
        .edges
        .par_iter()
        .copied()
        .filter(|e| !e.is_self_loop())
        .collect();
    let mut node_of: Vec<u32> = (0..n as u32).collect();
    let mut cur_n = n;

    for phase in 1..=max_phase {
        let started = std::time::Instant::now();
        let threshold = if phase >= 32 { u64::MAX } else { 1u64 << phase };
        let (light, heavy): (Vec<Edge>, Vec<Edge>) =
            cur_edges.par_iter().partition(|e| (e.w as u64) < threshold);
        if light.is_empty() {
            if cfg.mode == ChMode::Faithful {
                chain_all(&mut asm, &mut node_of, phase);
            }
            if let Some(t) = trace.as_deref_mut() {
                t.phases.push(PhaseTrace {
                    phase,
                    vertices_in: cur_n,
                    light_edges: 0,
                    components: cur_n,
                    seconds: started.elapsed().as_secs_f64(),
                });
            }
            continue;
        }
        let comps = connected_components(
            EdgeSet {
                n: cur_n,
                edges: &light,
            },
            cfg.cc,
        );
        let vertices_in = cur_n;
        let light_count = light.len();
        let (new_node_of, remap, next_n) =
            materialise_phase(&mut asm, &node_of, &comps, phase, cfg.mode);
        node_of = new_node_of;
        cur_n = next_n;
        // Contract the heavy edges through the component map; drop the
        // (now intra-component) light edges and any new self loops.
        cur_edges = heavy
            .par_iter()
            .map(|e| Edge::new(remap[e.u as usize], remap[e.v as usize], e.w))
            .filter(|e| !e.is_self_loop())
            .collect();
        if cfg.dedup {
            dedup_min_weight(&mut cur_edges);
        }
        if let Some(t) = trace.as_deref_mut() {
            t.phases.push(PhaseTrace {
                phase,
                vertices_in,
                light_edges: light_count,
                components: next_n,
                seconds: started.elapsed().as_secs_f64(),
            });
        }
    }
    asm.finish()
}

/// Creates the phase's CH nodes and the contraction maps.
///
/// Returns `(node_of, remap, next_n)` where `remap[old_super] = new_super`
/// and `node_of[new_super]` is the CH node representing it.
fn materialise_phase(
    asm: &mut ChAssembler,
    node_of: &[u32],
    comps: &Components,
    phase: u32,
    mode: ChMode,
) -> (Vec<u32>, Vec<u32>, usize) {
    let cur_n = node_of.len();
    let alpha = (phase - 1) as u8;
    // Group super-vertices by component label. Counting pass then bucket
    // fill (serial; the group step is O(cur_n) and cheap next to CC).
    let mut new_id = vec![u32::MAX; cur_n];
    let mut order: Vec<u32> = Vec::with_capacity(comps.count);
    for v in 0..cur_n {
        let l = comps.labels[v] as usize;
        if new_id[l] == u32::MAX {
            new_id[l] = order.len() as u32;
            order.push(l as u32);
        }
    }
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); comps.count];
    for v in 0..cur_n {
        members[new_id[comps.labels[v] as usize] as usize].push(node_of[v]);
    }
    let mut new_node_of = vec![0u32; comps.count];
    for (g, children) in members.into_iter().enumerate() {
        debug_assert!(!children.is_empty());
        new_node_of[g] = if children.len() == 1 && mode == ChMode::Collapsed {
            children[0]
        } else {
            asm.add_node(alpha, children)
        };
    }
    let remap: Vec<u32> = (0..cur_n)
        .into_par_iter()
        .map(|v| new_id[comps.labels[v] as usize])
        .collect();
    (new_node_of, remap, comps.count)
}

/// Faithful-mode phase with no admitted edges: every component still gets a
/// chain node.
fn chain_all(asm: &mut ChAssembler, node_of: &mut [u32], phase: u32) {
    let alpha = (phase - 1) as u8;
    for slot in node_of.iter_mut() {
        *slot = asm.add_node(alpha, vec![*slot]);
    }
}

/// Keeps, for each unordered contracted pair, only the lightest edge.
fn dedup_min_weight(edges: &mut Vec<Edge>) {
    edges.par_iter_mut().for_each(|e| *e = e.canonical());
    edges.par_sort_unstable_by_key(|e| (e.u, e.v, e.w));
    edges.dedup_by_key(|e| (e.u, e.v));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder_dsu::build_serial;
    use crate::stats::canonical_signature;
    use mmt_graph::gen::shapes;
    use mmt_graph::CsrGraph;

    fn assert_same_hierarchy(el: &EdgeList, mode: ChMode) {
        let serial = build_serial(el, mode);
        let parallel = build_parallel_with(
            el,
            ParallelBuildConfig {
                mode,
                ..Default::default()
            },
        );
        let g = CsrGraph::from_edge_list(el);
        parallel.validate(Some(&g)).unwrap();
        serial.validate(Some(&g)).unwrap();
        assert_eq!(
            canonical_signature(&serial),
            canonical_signature(&parallel),
            "serial and parallel builders disagree"
        );
    }

    #[test]
    fn matches_serial_on_figure_one() {
        assert_same_hierarchy(&shapes::figure_one(), ChMode::Collapsed);
        assert_same_hierarchy(&shapes::figure_one(), ChMode::Faithful);
    }

    #[test]
    fn matches_serial_on_shapes() {
        assert_same_hierarchy(&shapes::path(9, 3), ChMode::Collapsed);
        assert_same_hierarchy(&shapes::star(7, 5), ChMode::Collapsed);
        assert_same_hierarchy(&shapes::complete(6, 2), ChMode::Collapsed);
        assert_same_hierarchy(
            &EdgeList::from_triples(5, [(0, 1, 1), (1, 2, 2), (2, 3, 4), (3, 4, 8)]),
            ChMode::Faithful,
        );
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
        for class in [GraphClass::Random, GraphClass::Rmat] {
            for dist in [WeightDist::Uniform, WeightDist::PolyLog] {
                for log_c in [1, 4, 8] {
                    let mut spec = WorkloadSpec::new(class, dist, 7, log_c);
                    spec.seed = 42;
                    let el = spec.generate();
                    assert_same_hierarchy(&el, ChMode::Collapsed);
                }
            }
        }
    }

    #[test]
    fn all_cc_algorithms_give_same_hierarchy() {
        let el = shapes::figure_one();
        let base = build_parallel(&el);
        for cc in [CcAlgorithm::SerialDsu, CcAlgorithm::ShiloachVishkin] {
            let other = build_parallel_with(
                &el,
                ParallelBuildConfig {
                    cc,
                    ..Default::default()
                },
            );
            assert_eq!(canonical_signature(&base), canonical_signature(&other));
        }
    }

    #[test]
    fn dedup_keeps_lightest_parallel_edge() {
        let mut edges = vec![
            Edge::new(3, 1, 9),
            Edge::new(1, 3, 2),
            Edge::new(0, 1, 5),
            Edge::new(1, 3, 4),
        ];
        dedup_min_weight(&mut edges);
        assert_eq!(edges, vec![Edge::new(0, 1, 5), Edge::new(1, 3, 2)]);
    }

    #[test]
    fn disconnected_and_degenerate_inputs() {
        let el = EdgeList::from_triples(4, [(0, 1, 2), (2, 3, 2)]);
        assert_same_hierarchy(&el, ChMode::Collapsed);
        let ch = build_parallel(&EdgeList::new(3));
        assert_eq!(ch.children(ch.root()).len(), 3);
        let ch = build_parallel(&EdgeList::new(0));
        assert_eq!(ch.num_nodes(), 2);
    }

    #[test]
    fn trace_accounts_for_all_phases() {
        let el = EdgeList::from_triples(5, [(0, 1, 1), (1, 2, 2), (2, 3, 4), (3, 4, 8)]);
        let (ch, trace) = build_parallel_traced(&el, ParallelBuildConfig::default());
        assert_eq!(ch.num_nodes(), 9);
        // Weights 1,2,4,8 -> phases 1..=4, each merging one component.
        assert_eq!(trace.phases.len(), 4);
        assert_eq!(
            trace.phases.iter().map(|p| p.phase).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(trace.phases[0].vertices_in, 5);
        assert_eq!(trace.phases[0].light_edges, 1);
        assert_eq!(trace.phases[0].components, 4);
        assert_eq!(trace.phases[3].components, 1);
        assert!(trace.total_seconds() >= 0.0);
        assert!(trace.slowest_phase().is_some());
        // Traced and untraced builds are identical.
        assert_eq!(
            canonical_signature(&ch),
            canonical_signature(&build_parallel(&el))
        );
    }

    #[test]
    fn trace_records_empty_phases() {
        // Weights 1 and 8 only: phases 2 and 3 admit nothing.
        let el = EdgeList::from_triples(3, [(0, 1, 1), (1, 2, 8)]);
        let (_, trace) = build_parallel_traced(&el, ParallelBuildConfig::default());
        assert_eq!(trace.phases.len(), 4);
        assert_eq!(trace.phases[1].light_edges, 0);
        assert_eq!(trace.phases[1].components, trace.phases[1].vertices_in);
    }

    #[test]
    fn no_dedup_matches_dedup() {
        let el = shapes::figure_one();
        let a = build_parallel_with(
            &el,
            ParallelBuildConfig {
                dedup: false,
                ..Default::default()
            },
        );
        let b = build_parallel(&el);
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
    }
}
