//! Thorup's Component Hierarchy: the data structure and three builders.
//!
//! The Component Hierarchy (CH) encapsulates, for every power-of-two weight
//! threshold, how the graph decomposes into connected components; Thorup's
//! SSSP algorithm (in `mmt-thorup`) walks it to find vertices that may be
//! settled in arbitrary order. The paper's central systems claim is that
//! one CH, built once, can be **shared by many concurrent SSSP queries** —
//! so the structure here is frozen and the per-query state lives elsewhere.
//!
//! * [`hierarchy`] — the frozen tree, its invariants and validator;
//! * [`builder_phases`] — the paper's Algorithm 1, parallel (Table 3 / Fig 4);
//! * [`builder_dsu`] — the serial union-find equivalent (oracle + Table 1);
//! * [`builder_mst`] — Thorup's MST route, kept as an ablation;
//! * [`zero_weight`] — the preprocessing contraction for zero-weight edges;
//! * [`stats`] — Table 2 statistics and the cross-builder signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder_dsu;
pub mod builder_mst;
pub mod builder_phases;
pub mod clustering;
pub mod hierarchy;
pub mod io;
pub mod stats;
pub mod traversal;
pub mod zero_weight;

pub use builder_dsu::build_serial;
pub use builder_mst::build_via_mst;
pub use builder_phases::{
    build_parallel, build_parallel_traced, build_parallel_with, BuildTrace, ParallelBuildConfig,
};
pub use clustering::{clusters_at_level, clusters_at_threshold, merge_threshold, Clustering};
pub use hierarchy::ComponentHierarchy;
pub use stats::ChStats;
pub use zero_weight::ZeroContraction;

/// Chain handling during construction.
///
/// The paper's Algorithm 1 literally creates a CH-node per connected
/// component per phase, producing long single-child chains on large-`C`
/// instances (`Faithful`). The solver only needs the nodes where components
/// actually merge, so the default skips chain nodes (`Collapsed`), bounding
/// the hierarchy at `2n - 1` nodes. Both satisfy Thorup's invariants; the
/// Table 2 bench reports the sizes of both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChMode {
    /// Skip single-child chain nodes (≤ 2n − 1 nodes).
    Collapsed,
    /// One node per component per phase, as written in the paper.
    Faithful,
}
