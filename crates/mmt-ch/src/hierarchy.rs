//! The Component Hierarchy (CH) data structure.
//!
//! Thorup's CH is a tree over a weighted undirected graph `G`:
//! `Component(v, i)` is the subgraph reachable from `v` along edges of
//! weight `< 2^i`; the children of a level-`i` CH node are the connected
//! components left after removing edges of weight `≥ 2^{i-1}`. Leaves are
//! the vertices of `G`, the root represents the whole graph (paper
//! Figure 1).
//!
//! The structure here is frozen and array-backed (structure-of-arrays, CSR
//! children), because the paper's headline use-case — many simultaneous
//! SSSP queries sharing one CH — requires the hierarchy to be read-only
//! and compact. Per-query mutable state lives in `mmt-thorup`'s
//! `ThorupInstance`, not here.
//!
//! Node ids: `0..n` are leaves (leaf `i` *is* vertex `i`), internal nodes
//! follow in construction order, the root is always the last node.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::{CsrGraph, VertexPermutation};

/// Bucket shift of the synthetic root inserted above disconnected graphs.
/// There are no edges between its children, so any shift is valid; 64
/// saturates `bucket_of` to bucket 0 for every finite distance.
pub const SYNTHETIC_ROOT_ALPHA: u8 = 64;

/// A frozen Component Hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentHierarchy {
    n: usize,
    parent: Vec<u32>,
    alpha: Vec<u8>,
    children_offsets: Vec<u32>,
    children: Vec<u32>,
    leaf_count: Vec<u32>,
    root: u32,
}

/// Mutable accumulator used by the builders in this crate.
#[derive(Debug, Default)]
pub struct ChAssembler {
    parent: Vec<u32>,
    alpha: Vec<u8>,
    children: Vec<Vec<u32>>,
    n: usize,
}

impl ChAssembler {
    /// Starts a hierarchy over `n` graph vertices: nodes `0..n` are leaves.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize / 2, "node ids are u32");
        Self {
            parent: (0..n as u32).collect(),
            alpha: vec![0; n],
            children: vec![Vec::new(); n],
            n,
        }
    }

    /// Number of vertices (leaves).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Adds an internal node with the given bucket shift (`alpha = level-1`
    /// for a node formed at phase `level`) over `children`, which must be
    /// existing parentless nodes. Returns the new node id.
    pub fn add_node(&mut self, alpha: u8, children: Vec<u32>) -> u32 {
        debug_assert!(!children.is_empty());
        let id = self.parent.len() as u32;
        for &c in &children {
            debug_assert_eq!(self.parent[c as usize], c, "child {c} already has a parent");
            self.parent[c as usize] = id;
        }
        self.parent.push(id);
        self.alpha.push(alpha);
        self.children.push(children);
        id
    }

    /// Nodes that currently have no parent (component representatives).
    pub fn orphans(&self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] == v)
            .collect()
    }

    /// Freezes into a [`ComponentHierarchy`]. If several parentless nodes
    /// remain (disconnected graph), a synthetic root is inserted above them.
    pub fn finish(mut self) -> ComponentHierarchy {
        let orphans: Vec<u32> = (0..self.parent.len() as u32)
            .filter(|&v| self.parent[v as usize] == v)
            .collect();
        assert!(!orphans.is_empty(), "hierarchy must have at least one node");
        let root = if orphans.len() == 1 {
            orphans[0]
        } else {
            self.add_node(SYNTHETIC_ROOT_ALPHA, orphans)
        };
        let num = self.parent.len();
        // Children CSR.
        let mut offsets = Vec::with_capacity(num + 1);
        offsets.push(0u32);
        let mut flat = Vec::with_capacity(num.saturating_sub(1));
        for c in &self.children {
            flat.extend_from_slice(c);
            offsets.push(flat.len() as u32);
        }
        // Subtree leaf counts, bottom-up. Children always have smaller ids
        // than their parent (construction order), so a single forward pass
        // over internal nodes works.
        let mut leaf_count = vec![0u32; num];
        for slot in leaf_count.iter_mut().take(self.n) {
            *slot = 1;
        }
        for id in self.n..num {
            let mut sum = 0u32;
            for &c in &self.children[id] {
                debug_assert!((c as usize) < id, "children precede parents");
                sum += leaf_count[c as usize];
            }
            leaf_count[id] = sum;
        }
        ComponentHierarchy {
            n: self.n,
            parent: self.parent,
            alpha: self.alpha,
            children_offsets: offsets,
            children: flat,
            leaf_count,
            root,
        }
    }
}

impl ComponentHierarchy {
    /// Number of graph vertices (= leaves).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of CH nodes (leaves + internal).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Number of internal (non-leaf) nodes.
    #[inline]
    pub fn num_internal(&self) -> usize {
        self.num_nodes() - self.n
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// True if `node` is a leaf (i.e. a graph vertex).
    #[inline]
    pub fn is_leaf(&self, node: u32) -> bool {
        (node as usize) < self.n
    }

    /// The vertex a leaf node stands for.
    #[inline]
    pub fn vertex_of_leaf(&self, node: u32) -> VertexId {
        debug_assert!(self.is_leaf(node));
        node
    }

    /// The leaf node of a vertex.
    #[inline]
    pub fn leaf_of_vertex(&self, v: VertexId) -> u32 {
        v
    }

    /// Parent of `node` (the root is its own parent).
    #[inline]
    pub fn parent(&self, node: u32) -> u32 {
        self.parent[node as usize]
    }

    /// Bucket shift of `node`: children are bucketed by
    /// `mind(child) >> alpha(node)`. Equals `level - 1` for a node formed
    /// at phase `level` of Algorithm 1.
    #[inline]
    pub fn alpha(&self, node: u32) -> u8 {
        self.alpha[node as usize]
    }

    /// Children of `node` (empty for leaves).
    #[inline]
    pub fn children(&self, node: u32) -> &[u32] {
        let lo = self.children_offsets[node as usize] as usize;
        let hi = self.children_offsets[node as usize + 1] as usize;
        &self.children[lo..hi]
    }

    /// Number of leaves (graph vertices) in the subtree of `node`.
    #[inline]
    pub fn leaves_below(&self, node: u32) -> u32 {
        self.leaf_count[node as usize]
    }

    /// The bucket a value `mind` falls into under `node`'s shift, or `None`
    /// when `mind` is infinite (unreached component).
    #[inline]
    pub fn bucket_of(&self, node: u32, mind: Dist) -> Option<u64> {
        if mind == INF {
            None
        } else {
            Some(mmt_platform::atomic::saturating_shr(
                mind,
                self.alpha[node as usize] as u32,
            ))
        }
    }

    /// All vertices in the subtree of `node`, by explicit stack DFS.
    pub fn subtree_vertices(&self, node: u32) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            if self.is_leaf(x) {
                out.push(self.vertex_of_leaf(x));
            } else {
                stack.extend_from_slice(self.children(x));
            }
        }
        out
    }

    /// Depth of the tree (a single-leaf hierarchy has depth 1).
    pub fn depth(&self) -> usize {
        // Longest leaf-to-root chain, computed by walking parents.
        let mut best = 0;
        for leaf in 0..self.n as u32 {
            let mut d = 1;
            let mut x = leaf;
            while self.parent(x) != x {
                x = self.parent(x);
                d += 1;
            }
            best = best.max(d);
        }
        best.max(1)
    }

    /// Heap bytes of the frozen structure.
    pub fn heap_bytes(&self) -> usize {
        self.parent.capacity() * 4
            + self.alpha.capacity()
            + self.children_offsets.capacity() * 4
            + self.children.capacity() * 4
            + self.leaf_count.capacity() * 4
    }

    /// The CH-DFS vertex order: leaves in the order a depth-first walk from
    /// the root meets them, children visited in construction order.
    ///
    /// Because every CH node's leaves form one contiguous run of this
    /// order, relabeling the graph by the returned permutation makes every
    /// Thorup component index-contiguous — the traversal's "visit all
    /// vertices of this component" loops become sequential memory sweeps.
    pub fn dfs_leaf_order(&self) -> VertexPermutation {
        let mut order = Vec::with_capacity(self.n);
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            if self.is_leaf(x) {
                order.push(self.vertex_of_leaf(x));
            } else {
                // Reversed so the first child is popped first: leaves come
                // out in left-to-right construction order.
                stack.extend(self.children(x).iter().rev());
            }
        }
        debug_assert_eq!(order.len(), self.n);
        VertexPermutation::from_new_to_old(order).expect("a DFS meets each leaf exactly once")
    }

    /// The same hierarchy over the relabeled vertex set: leaf `v` becomes
    /// leaf `perm.to_new(v)`, so this CH matches `graph.permuted(perm)`
    /// without rebuilding from scratch.
    ///
    /// `O(num_nodes)`: leaf ids are vertex ids and internal ids stay put,
    /// so only leaf references (parent slots, children entries) move. All
    /// frozen invariants survive — every leaf id stays `< n ≤` any internal
    /// id, so children still precede parents.
    pub fn permute_leaves(&self, perm: &VertexPermutation) -> ComponentHierarchy {
        assert_eq!(self.n, perm.n(), "permutation built for a different graph");
        let n = self.n;
        let remap = |node: u32| -> u32 {
            if (node as usize) < n {
                perm.to_new(node)
            } else {
                node
            }
        };
        let mut parent = self.parent.clone();
        let mut alpha = self.alpha.clone();
        let mut leaf_count = self.leaf_count.clone();
        for old in 0..n {
            let new = perm.to_new(old as u32) as usize;
            parent[new] = remap(self.parent[old]);
            alpha[new] = self.alpha[old];
            leaf_count[new] = self.leaf_count[old];
        }
        // Children CSR: leaves have no children, so only entries move.
        let children: Vec<u32> = self.children.iter().map(|&c| remap(c)).collect();
        // Leaves all have empty child ranges, so the offsets CSR is already
        // correct for the relabeled leaves.
        debug_assert!((0..n).all(|v| self.children(v as u32).is_empty()));
        ComponentHierarchy {
            n,
            parent,
            alpha,
            children_offsets: self.children_offsets.clone(),
            children,
            leaf_count,
            root: remap(self.root),
        }
    }

    /// Checks structural invariants and, when `graph` is given, the semantic
    /// Thorup conditions:
    ///
    /// 1. tree well-formedness (single root, CSR/parent agreement, children
    ///    precede parents, leaf counts correct);
    /// 2. monotone shifts: `alpha(parent) ≥ alpha(child)` with strict
    ///    inequality for internal children;
    /// 3. **separation** — every graph edge joining two different children
    ///    of a node with shift `a` has weight `≥ 2^a`;
    /// 4. **cohesion** — the vertex set of every internal node with shift
    ///    `a` is connected using only edges of weight `< 2^(a+1)`.
    pub fn validate(&self, graph: Option<&CsrGraph>) -> Result<(), String> {
        let num = self.num_nodes();
        if self.parent(self.root) != self.root {
            return Err("root is not its own parent".into());
        }
        let mut seen_child = vec![false; num];
        for node in 0..num as u32 {
            for &c in self.children(node) {
                if c >= node {
                    return Err(format!("child {c} does not precede parent {node}"));
                }
                if self.parent(c) != node {
                    return Err(format!("parent array disagrees with CSR at {c}"));
                }
                if seen_child[c as usize] {
                    return Err(format!("node {c} has two parents"));
                }
                seen_child[c as usize] = true;
                if !self.is_leaf(c) && self.alpha(c) >= self.alpha(node) {
                    return Err(format!(
                        "internal child {c} (alpha {}) not below parent {node} (alpha {})",
                        self.alpha(c),
                        self.alpha(node)
                    ));
                }
            }
            if !self.is_leaf(node) && self.children(node).is_empty() {
                return Err(format!("internal node {node} has no children"));
            }
        }
        for node in 0..num as u32 {
            if node != self.root && !seen_child[node as usize] {
                return Err(format!("node {node} is unreachable from the root"));
            }
        }
        let total: u32 = self.leaves_below(self.root);
        if total as usize != self.n {
            return Err(format!("root covers {total} leaves, expected {}", self.n));
        }
        if let Some(g) = graph {
            if g.n() != self.n {
                return Err("graph size mismatch".into());
            }
            self.validate_semantics(g)?;
        }
        Ok(())
    }

    fn validate_semantics(&self, g: &CsrGraph) -> Result<(), String> {
        // Map each vertex to the child-of-`node` subtree it belongs to, one
        // internal node at a time (test-scale O(n · depth); fine for the
        // sizes the validators run at).
        let mut child_of: Vec<u32> = vec![u32::MAX; self.n];
        for node in self.n as u32..self.num_nodes() as u32 {
            let a = self.alpha(node);
            for &c in self.children(node) {
                for v in self.subtree_vertices(c) {
                    child_of[v as usize] = c;
                }
            }
            let threshold: Dist = if a >= 64 { Dist::MAX } else { 1u64 << a };
            // Separation: inter-child edges must be >= 2^a.
            for &c in self.children(node) {
                for u in self.subtree_vertices(c) {
                    for (v, w) in g.edges_from(u) {
                        let cv = child_of[v as usize];
                        if cv != u32::MAX && cv != c && (w as Dist) < threshold {
                            return Err(format!(
                                "edge ({u},{v}) of weight {w} crosses children of node {node} with alpha {a}"
                            ));
                        }
                    }
                }
            }
            // Cohesion: the node's vertex set is connected via edges < 2^(a+1).
            let verts = self.subtree_vertices(node);
            if verts.len() > 1 && a < 64 {
                let limit: Dist = 1u64 << (a as u32 + 1).min(63);
                if !connected_under(g, &verts, limit) {
                    return Err(format!(
                        "node {node} (alpha {a}) is not connected using edges < {limit}"
                    ));
                }
            }
            // Reset markers for the next node.
            for v in verts {
                child_of[v as usize] = u32::MAX;
            }
        }
        Ok(())
    }
}

fn connected_under(g: &CsrGraph, verts: &[VertexId], limit: Dist) -> bool {
    use std::collections::VecDeque;
    let mut inset = vec![false; g.n()];
    for &v in verts {
        inset[v as usize] = true;
    }
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::new();
    queue.push_back(verts[0]);
    seen[verts[0] as usize] = true;
    let mut reached = 0usize;
    while let Some(u) = queue.pop_front() {
        reached += 1;
        for (v, w) in g.edges_from(u) {
            if (w as Dist) < limit && inset[v as usize] && !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    reached == verts.len()
}

impl mmt_platform::MemFootprint for ComponentHierarchy {
    fn heap_bytes(&self) -> usize {
        ComponentHierarchy::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::shapes;

    /// Hand-build the CH of Figure 1's graph: two weight-1 triangles joined
    /// by a weight-8 edge.
    fn figure_one_ch() -> (ComponentHierarchy, CsrGraph) {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let mut asm = ChAssembler::new(6);
        // Phase 1 (alpha 0): both triangles collapse (weight-1 edges < 2).
        let t1 = asm.add_node(0, vec![0, 1, 2]);
        let t2 = asm.add_node(0, vec![3, 4, 5]);
        // Phase 4 (alpha 3): the weight-8 edge merges them (8 < 16).
        let root = asm.add_node(3, vec![t1, t2]);
        let ch = asm.finish();
        assert_eq!(ch.root(), root);
        (ch, g)
    }

    #[test]
    fn paper_figure_1() {
        let (ch, g) = figure_one_ch();
        assert_eq!(ch.n(), 6);
        assert_eq!(ch.num_nodes(), 9);
        assert_eq!(ch.num_internal(), 3);
        assert_eq!(ch.leaves_below(ch.root()), 6);
        assert_eq!(ch.leaves_below(6), 3);
        assert_eq!(ch.depth(), 3);
        ch.validate(Some(&g)).unwrap();
    }

    #[test]
    fn bucket_of_uses_alpha() {
        let (ch, _) = figure_one_ch();
        let root = ch.root();
        assert_eq!(ch.alpha(root), 3);
        assert_eq!(ch.bucket_of(root, 0), Some(0));
        assert_eq!(ch.bucket_of(root, 7), Some(0));
        assert_eq!(ch.bucket_of(root, 8), Some(1));
        assert_eq!(ch.bucket_of(root, INF), None);
        // Triangle nodes shift by 0: bucket == distance.
        assert_eq!(ch.bucket_of(6, 5), Some(5));
    }

    #[test]
    fn subtree_vertices_cover_leaves() {
        let (ch, _) = figure_one_ch();
        let mut left = ch.subtree_vertices(6);
        left.sort_unstable();
        assert_eq!(left, vec![0, 1, 2]);
        let mut all = ch.subtree_vertices(ch.root());
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn synthetic_root_for_disconnected() {
        // Two isolated vertices: finish() must add a synthetic root.
        let asm = ChAssembler::new(2);
        let ch = asm.finish();
        assert_eq!(ch.num_nodes(), 3);
        assert_eq!(ch.alpha(ch.root()), SYNTHETIC_ROOT_ALPHA);
        assert_eq!(ch.bucket_of(ch.root(), 123456), Some(0));
        ch.validate(None).unwrap();
    }

    #[test]
    fn single_vertex_hierarchy() {
        let asm = ChAssembler::new(1);
        let ch = asm.finish();
        assert_eq!(ch.num_nodes(), 1);
        assert_eq!(ch.root(), 0);
        assert!(ch.is_leaf(ch.root()));
        assert_eq!(ch.depth(), 1);
        ch.validate(None).unwrap();
    }

    #[test]
    fn validate_rejects_separation_violation() {
        // Claim the two triangles split at alpha 4 (threshold 16): the
        // weight-8 bridge then *violates* separation.
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let mut asm = ChAssembler::new(6);
        let t1 = asm.add_node(0, vec![0, 1, 2]);
        let t2 = asm.add_node(0, vec![3, 4, 5]);
        asm.add_node(4, vec![t1, t2]);
        let ch = asm.finish();
        let err = ch.validate(Some(&g)).unwrap_err();
        assert!(err.contains("crosses children"), "{err}");
    }

    #[test]
    fn validate_rejects_incohesive_node() {
        // Two vertices with NO edge between them, merged under alpha 0
        // (claims connectivity via edges < 2).
        let g = CsrGraph::from_edge_list(&mmt_graph::types::EdgeList::new(2));
        let mut asm = ChAssembler::new(2);
        asm.add_node(0, vec![0, 1]);
        let ch = asm.finish();
        let err = ch.validate(Some(&g)).unwrap_err();
        assert!(err.contains("not connected"), "{err}");
    }

    #[test]
    fn validate_rejects_alpha_inversion() {
        let mut asm = ChAssembler::new(3);
        let a = asm.add_node(5, vec![0, 1]);
        asm.add_node(5, vec![a, 2]); // parent alpha == child alpha: invalid
        let ch = asm.finish();
        assert!(ch.validate(None).is_err());
    }

    #[test]
    fn heap_bytes_nonzero() {
        let (ch, _) = figure_one_ch();
        assert!(ch.heap_bytes() > 0);
    }

    #[test]
    fn dfs_leaf_order_makes_components_contiguous() {
        let (ch, _) = figure_one_ch();
        let perm = ch.dfs_leaf_order();
        assert_eq!(perm.n(), 6);
        // Both triangles ({0,1,2} and {3,4,5}) must land in contiguous
        // index ranges of the new order.
        for node in [6u32, 7] {
            let news: Vec<u32> = ch
                .subtree_vertices(node)
                .iter()
                .map(|&v| perm.to_new(v))
                .collect();
            let lo = *news.iter().min().unwrap();
            let hi = *news.iter().max().unwrap();
            assert_eq!(
                (hi - lo + 1) as usize,
                news.len(),
                "component {node} not contiguous: {news:?}"
            );
        }
    }

    #[test]
    fn dfs_order_on_generated_graph_is_a_permutation() {
        let spec = mmt_graph::WorkloadSpec::new(
            mmt_graph::GraphClass::Rmat,
            mmt_graph::WeightDist::PolyLog,
            7,
            8,
        );
        let g = CsrGraph::from_edge_list(&spec.generate());
        let ch = crate::build_serial(&spec.generate(), crate::ChMode::Collapsed);
        let perm = ch.dfs_leaf_order();
        let mut olds: Vec<u32> = (0..g.n() as u32).map(|i| perm.to_old(i)).collect();
        olds.sort_unstable();
        assert_eq!(olds, (0..g.n() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn permute_leaves_matches_rebuilding_on_the_permuted_graph() {
        let spec = mmt_graph::WorkloadSpec::new(
            mmt_graph::GraphClass::Random,
            mmt_graph::WeightDist::Uniform,
            7,
            6,
        );
        let g = CsrGraph::from_edge_list(&spec.generate());
        let ch = crate::build_serial(&spec.generate(), crate::ChMode::Collapsed);
        for perm in [ch.dfs_leaf_order(), VertexPermutation::bfs(&g)] {
            let pg = g.permuted(&perm);
            let pch = ch.permute_leaves(&perm);
            // The remapped hierarchy satisfies every Thorup invariant
            // against the permuted graph.
            pch.validate(Some(&pg)).unwrap();
            assert_eq!(pch.num_nodes(), ch.num_nodes());
            assert_eq!(pch.root(), ch.root());
            assert_eq!(pch.depth(), ch.depth());
            // Subtree leaf sets correspond through the permutation.
            for node in pch.n() as u32..pch.num_nodes() as u32 {
                let mut got = pch.subtree_vertices(node);
                let mut want: Vec<u32> = ch
                    .subtree_vertices(node)
                    .iter()
                    .map(|&v| perm.to_new(v))
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "node {node}");
            }
        }
    }

    #[test]
    fn permute_leaves_single_vertex_root() {
        let asm = ChAssembler::new(1);
        let ch = asm.finish();
        let pch = ch.permute_leaves(&VertexPermutation::identity(1));
        assert_eq!(pch.root(), 0);
        pch.validate(None).unwrap();
    }
}
