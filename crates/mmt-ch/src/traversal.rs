//! Iterators over the Component Hierarchy: ancestor chains, postorder
//! walks, and per-node child-count histograms. Shared by the clustering
//! API, the statistics module, and tests.

use crate::hierarchy::ComponentHierarchy;
use mmt_platform::Log2Histogram;

/// Iterates `node, parent(node), …, root`.
pub fn ancestors(ch: &ComponentHierarchy, node: u32) -> impl Iterator<Item = u32> + '_ {
    let mut cur = Some(node);
    std::iter::from_fn(move || {
        let x = cur?;
        let p = ch.parent(x);
        cur = if p == x { None } else { Some(p) };
        Some(x)
    })
}

/// Postorder traversal of the whole hierarchy (children before parents).
///
/// Because builders append parents after children, node ids are already a
/// valid postorder-compatible topological order; this walks them and
/// filters to the root's subtree (which is everything in a well-formed
/// hierarchy).
pub fn postorder(ch: &ComponentHierarchy) -> impl Iterator<Item = u32> + '_ {
    0..ch.num_nodes() as u32
}

/// The lowest common ancestor of two leaves (or any two nodes).
pub fn lowest_common_ancestor(ch: &ComponentHierarchy, a: u32, b: u32) -> u32 {
    // Depth ≤ ~66 (alphas strictly increase up internal chains), so two
    // pointer walks are plenty.
    let depth = |mut x: u32| {
        let mut d = 0usize;
        while ch.parent(x) != x {
            x = ch.parent(x);
            d += 1;
        }
        d
    };
    let (mut x, mut y) = (a, b);
    let (mut dx, mut dy) = (depth(x), depth(y));
    while dx > dy {
        x = ch.parent(x);
        dx -= 1;
    }
    while dy > dx {
        y = ch.parent(y);
        dy -= 1;
    }
    while x != y {
        x = ch.parent(x);
        y = ch.parent(y);
    }
    x
}

/// Histogram of children-per-internal-node — the irregularity that makes
/// the paper's toVisit study (Table 6) necessary.
pub fn children_histogram(ch: &ComponentHierarchy) -> Log2Histogram {
    Log2Histogram::from_samples(
        (ch.n() as u32..ch.num_nodes() as u32).map(|v| ch.children(v).len() as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder_dsu::build_serial;
    use crate::ChMode;
    use mmt_graph::gen::shapes;

    fn figure_one_ch() -> ComponentHierarchy {
        build_serial(&shapes::figure_one(), ChMode::Collapsed)
    }

    #[test]
    fn ancestor_chain_ends_at_root() {
        let ch = figure_one_ch();
        let chain: Vec<u32> = ancestors(&ch, 0).collect();
        assert_eq!(chain.first(), Some(&0));
        assert_eq!(chain.last(), Some(&ch.root()));
        assert_eq!(chain.len(), 3); // leaf -> triangle -> root
    }

    #[test]
    fn postorder_children_before_parents() {
        let ch = figure_one_ch();
        let order: Vec<u32> = postorder(&ch).collect();
        let pos = |x: u32| order.iter().position(|&y| y == x).unwrap();
        for node in order.iter().copied() {
            for &c in ch.children(node) {
                assert!(pos(c) < pos(node));
            }
        }
        assert_eq!(order.len(), ch.num_nodes());
    }

    #[test]
    fn lca_of_figure_one() {
        let ch = figure_one_ch();
        // 0,1 share the first triangle node; 0,5 only share the root.
        let t = lowest_common_ancestor(&ch, 0, 1);
        assert!(t != ch.root() && !ch.is_leaf(t));
        assert_eq!(lowest_common_ancestor(&ch, 0, 5), ch.root());
        assert_eq!(lowest_common_ancestor(&ch, 4, 4), 4);
        assert_eq!(lowest_common_ancestor(&ch, 3, ch.root()), ch.root());
    }

    #[test]
    fn children_histogram_counts_internal_nodes() {
        let ch = figure_one_ch();
        let h = children_histogram(&ch);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max(), 3);
        assert!((h.mean() - 8.0 / 3.0).abs() < 1e-12);
    }
}
