//! Component Hierarchy construction via the minimum spanning tree — the
//! route Thorup's analysis is built on, kept as an ablation.
//!
//! Thorup constructs the CH from the MST in linear time; the paper instead
//! builds it from the original graph because "this is faster in practice"
//! (their Section 3.1). Both routes yield the *same* hierarchy, because a
//! graph and its minimum spanning forest have identical connectivity under
//! every weight threshold (the cycle property). The `a1_ch_mst` bench
//! measures the trade-off; the tests here pin down the equivalence.

use crate::builder_dsu::build_serial;
use crate::hierarchy::ComponentHierarchy;
use crate::ChMode;
use mmt_cc::DisjointSets;
use mmt_graph::types::{Edge, EdgeList};
use rayon::prelude::*;

/// Computes a minimum spanning forest by Kruskal's algorithm (parallel sort
/// + serial union-find scan).
pub fn minimum_spanning_forest(el: &EdgeList) -> EdgeList {
    let mut order: Vec<u32> = (0..el.edges.len() as u32).collect();
    order.par_sort_unstable_by_key(|&i| {
        let e = el.edges[i as usize];
        (e.w, e.u, e.v)
    });
    let mut dsu = DisjointSets::new(el.n);
    let mut kept: Vec<Edge> = Vec::with_capacity(el.n.saturating_sub(1));
    for &i in &order {
        let e = el.edges[i as usize];
        if !e.is_self_loop() && dsu.union(e.u, e.v) {
            kept.push(e);
            if dsu.num_sets() == 1 {
                break;
            }
        }
    }
    EdgeList {
        n: el.n,
        edges: kept,
    }
}

/// Builds the CH by first reducing the graph to its minimum spanning
/// forest, then running the phase construction on the (much smaller)
/// forest.
pub fn build_via_mst(el: &EdgeList, mode: ChMode) -> ComponentHierarchy {
    let mst = minimum_spanning_forest(el);
    build_serial(&mst, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::canonical_signature;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::CsrGraph;

    #[test]
    fn msf_of_figure_one() {
        let el = shapes::figure_one();
        let mst = minimum_spanning_forest(&el);
        // connected: n-1 edges, total weight 1*5... the bridge (8) + 4 unit edges
        assert_eq!(mst.m(), 5);
        let total: u64 = mst.edges.iter().map(|e| e.w as u64).sum();
        assert_eq!(total, 4 + 8);
    }

    #[test]
    fn msf_is_acyclic_and_spanning() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 6);
        spec.seed = 9;
        let el = spec.generate();
        let mst = minimum_spanning_forest(&el);
        assert_eq!(mst.m(), el.n - 1, "random graphs are connected");
        let mut dsu = DisjointSets::new(el.n);
        for e in &mst.edges {
            assert!(dsu.union(e.u, e.v), "cycle in MSF");
        }
    }

    #[test]
    fn disconnected_forest() {
        let el = EdgeList::from_triples(5, [(0, 1, 2), (1, 2, 3), (3, 4, 1)]);
        let mst = minimum_spanning_forest(&el);
        assert_eq!(mst.m(), 3);
    }

    #[test]
    fn ch_from_mst_equals_ch_from_graph() {
        for (class, dist, log_c) in [
            (GraphClass::Random, WeightDist::Uniform, 6),
            (GraphClass::Random, WeightDist::PolyLog, 8),
            (GraphClass::Rmat, WeightDist::Uniform, 4),
        ] {
            let mut spec = WorkloadSpec::new(class, dist, 7, log_c);
            spec.seed = 31;
            let el = spec.generate();
            let from_graph = build_serial(&el, ChMode::Collapsed);
            let from_mst = build_via_mst(&el, ChMode::Collapsed);
            from_mst
                .validate(Some(&CsrGraph::from_edge_list(&el)))
                .unwrap();
            assert_eq!(
                canonical_signature(&from_graph),
                canonical_signature(&from_mst),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn parallel_edge_ties_do_not_change_hierarchy() {
        let el = EdgeList::from_triples(3, [(0, 1, 4), (0, 1, 4), (1, 2, 4), (0, 2, 4)]);
        let a = build_serial(&el, ChMode::Collapsed);
        let b = build_via_mst(&el, ChMode::Collapsed);
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
    }
}
