//! The Component Hierarchy as a clustering dendrogram.
//!
//! By construction, the CH *is* single-linkage hierarchical clustering at
//! power-of-two scales: the vertices of `Component(v, i)` are exactly one
//! connected component of the graph restricted to edges of weight `< 2^i`.
//! That makes the hierarchy useful far beyond shortest paths — on a
//! dissimilarity graph it answers "what are the communities at threshold
//! `t`" and "at what scale do `u` and `v` merge" in near-constant time,
//! amortising one parallel construction over any number of threshold
//! queries (the same build-once-share-everything economics as the SSSP
//! use-case).

use crate::hierarchy::ComponentHierarchy;
use crate::traversal::lowest_common_ancestor;
use mmt_graph::types::{VertexId, Weight};

/// A flat clustering extracted from the hierarchy at one threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Canonical label per vertex: the smallest vertex id in its cluster.
    pub labels: Vec<VertexId>,
    /// Number of clusters.
    pub count: usize,
}

/// Clusters of the graph under edges of weight `< 2^level`, read straight
/// off the hierarchy (no graph traversal).
///
/// ```
/// use mmt_ch::{build_parallel, clusters_at_level};
/// use mmt_graph::gen::shapes;
///
/// // Two weight-1 triangles joined by one weight-8 edge (paper Figure 1).
/// let ch = build_parallel(&shapes::figure_one());
/// assert_eq!(clusters_at_level(&ch, 1).count, 2); // below 2: the triangles
/// assert_eq!(clusters_at_level(&ch, 4).count, 1); // below 16: everything
/// ```
///
/// A CH node formed at phase `p` (shift `alpha = p - 1`) is internally
/// connected by edges `< 2^p`; the cluster roots at `level = i` are the
/// maximal nodes with `p ≤ i`, i.e. `alpha < i`, whose parent does not
/// also qualify.
pub fn clusters_at_level(ch: &ComponentHierarchy, level: u32) -> Clustering {
    let mut labels: Vec<VertexId> = vec![0; ch.n()];
    let mut count = 0usize;
    let qualifies = |node: u32| ch.is_leaf(node) || (ch.alpha(node) as u32) < level;
    for node in 0..ch.num_nodes() as u32 {
        let is_cluster_root = qualifies(node)
            && (ch.parent(node) == node || !qualifies_internal(ch, ch.parent(node), level));
        if !is_cluster_root {
            continue;
        }
        count += 1;
        let members = ch.subtree_vertices(node);
        let min = *members.iter().min().expect("clusters are non-empty");
        for v in members {
            labels[v as usize] = min;
        }
    }
    Clustering { labels, count }
}

#[inline]
fn qualifies_internal(ch: &ComponentHierarchy, node: u32, level: u32) -> bool {
    // Parents are always internal nodes.
    (ch.alpha(node) as u32) < level
}

impl Clustering {
    /// True if `u` and `v` share a cluster.
    #[inline]
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Sizes of all clusters, descending.
    pub fn sizes(&self) -> Vec<usize> {
        let mut by_label = std::collections::HashMap::new();
        for &l in &self.labels {
            *by_label.entry(l).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = by_label.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

/// The merge scale of two vertices: the smallest power-of-two threshold
/// `2^i` at which `u` and `v` fall into one cluster, or `None` if they are
/// never connected (different components of the whole graph).
///
/// This is the dendrogram height of their lowest common ancestor, which
/// upper-bounds their single-linkage distance by less than a factor 2.
pub fn merge_threshold(ch: &ComponentHierarchy, u: VertexId, v: VertexId) -> Option<u64> {
    if u == v {
        return Some(1);
    }
    let lca = lowest_common_ancestor(ch, ch.leaf_of_vertex(u), ch.leaf_of_vertex(v));
    let alpha = ch.alpha(lca) as u32;
    if alpha >= 64 {
        None // synthetic root: never connected
    } else {
        Some(1u64 << (alpha + 1))
    }
}

/// Convenience: the clustering under edges of weight `< t` for an
/// arbitrary `t` (rounded down to the enclosing power of two — the CH only
/// stores power-of-two scales, exactly like the paper's bucketing).
pub fn clusters_at_threshold(ch: &ComponentHierarchy, t: Weight) -> Clustering {
    if t == 0 {
        // No edges qualify: every vertex is its own cluster.
        return Clustering {
            labels: (0..ch.n() as VertexId).collect(),
            count: ch.n(),
        };
    }
    // Largest level with 2^level <= t.
    let level = 31 - t.leading_zeros();
    clusters_at_level(ch, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder_dsu::build_serial;
    use crate::ChMode;
    use mmt_cc::{connected_components, CcAlgorithm, EdgeSet};
    use mmt_graph::gen::shapes;
    use mmt_graph::subgraph::edges_below;
    use mmt_graph::types::EdgeList;

    fn oracle(el: &EdgeList, limit: u32) -> Vec<VertexId> {
        let filtered = edges_below(el, limit);
        connected_components(
            EdgeSet {
                n: el.n,
                edges: &filtered.edges,
            },
            CcAlgorithm::SerialDsu,
        )
        .labels
    }

    #[test]
    fn figure_one_levels() {
        let el = shapes::figure_one();
        let ch = build_serial(&el, ChMode::Collapsed);
        // Below 2^1: the triangles.
        let c1 = clusters_at_level(&ch, 1);
        assert_eq!(c1.count, 2);
        assert!(c1.same(0, 2) && c1.same(3, 5) && !c1.same(0, 3));
        // Below 2^3 = 8: the bridge (weight 8) still out.
        assert_eq!(clusters_at_level(&ch, 3).count, 2);
        // Below 2^4: everything.
        assert_eq!(clusters_at_level(&ch, 4).count, 1);
        // Below 2^0 = 1: singletons.
        assert_eq!(clusters_at_level(&ch, 0).count, 6);
    }

    #[test]
    fn matches_cc_oracle_across_levels() {
        use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
        for mode in [ChMode::Collapsed, ChMode::Faithful] {
            let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, 7, 8);
            spec.seed = 12;
            let el = spec.generate();
            let ch = build_serial(&el, mode);
            for level in 0..=9u32 {
                let got = clusters_at_level(&ch, level);
                let want = oracle(&el, 1u32 << level.min(31));
                assert_eq!(got.labels, want, "level {level} mode {mode:?}");
            }
        }
    }

    #[test]
    fn merge_thresholds() {
        let el = shapes::figure_one();
        let ch = build_serial(&el, ChMode::Collapsed);
        assert_eq!(merge_threshold(&ch, 0, 1), Some(2));
        assert_eq!(merge_threshold(&ch, 0, 5), Some(16)); // bridge weight 8 < 16
        assert_eq!(merge_threshold(&ch, 2, 2), Some(1));
        // Disconnected pair -> None.
        let el2 = EdgeList::from_triples(4, [(0, 1, 3), (2, 3, 3)]);
        let ch2 = build_serial(&el2, ChMode::Collapsed);
        assert_eq!(merge_threshold(&ch2, 0, 2), None);
        assert_eq!(merge_threshold(&ch2, 0, 1), Some(4));
    }

    #[test]
    fn threshold_rounding() {
        let el = shapes::figure_one();
        let ch = build_serial(&el, ChMode::Collapsed);
        assert_eq!(clusters_at_threshold(&ch, 0).count, 6);
        assert_eq!(clusters_at_threshold(&ch, 1).count, 6); // edges < 1: none
        assert_eq!(clusters_at_threshold(&ch, 2).count, 2); // edges < 2
        assert_eq!(clusters_at_threshold(&ch, 15).count, 2); // rounds to 8
        assert_eq!(clusters_at_threshold(&ch, 16).count, 1);
    }

    #[test]
    fn sizes_sorted_descending() {
        let el = EdgeList::from_triples(5, [(0, 1, 1), (1, 2, 1)]);
        let ch = build_serial(&el, ChMode::Collapsed);
        let c = clusters_at_level(&ch, 1);
        assert_eq!(c.sizes(), vec![3, 1, 1]);
    }
}
