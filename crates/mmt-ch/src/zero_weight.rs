//! Zero-weight-edge preprocessing.
//!
//! "The CH of an undirected graph with positive edge weights can be
//! computed directly, but preprocessing is needed if G contains zero-weight
//! edges" (paper, Section 2.1). The preprocessing is a contraction: every
//! zero-weight connected component collapses to one super-vertex, because
//! all its members share a single δ value. SSSP is then solved on the
//! contracted graph and distances are fanned back out through the mapping.

use mmt_cc::DisjointSets;
use mmt_graph::types::{Dist, Edge, EdgeList, VertexId};

/// The result of contracting zero-weight components.
#[derive(Debug, Clone)]
pub struct ZeroContraction {
    /// The contracted graph; all weights are ≥ 1.
    pub reduced: EdgeList,
    /// `super_of[v]` — the contracted vertex standing for original `v`.
    pub super_of: Vec<VertexId>,
}

impl ZeroContraction {
    /// Contracts all zero-weight edges of `el`.
    pub fn contract(el: &EdgeList) -> Self {
        let mut dsu = DisjointSets::new(el.n);
        for e in &el.edges {
            if e.w == 0 {
                dsu.union(e.u, e.v);
            }
        }
        let comps = dsu.into_components();
        // Dense renumbering of the component labels.
        let mut super_of = vec![0 as VertexId; el.n];
        let mut new_id = vec![u32::MAX; el.n];
        let mut next = 0u32;
        for (v, slot) in super_of.iter_mut().enumerate() {
            let l = comps.labels[v] as usize;
            if new_id[l] == u32::MAX {
                new_id[l] = next;
                next += 1;
            }
            *slot = new_id[l];
        }
        let edges: Vec<Edge> = el
            .edges
            .iter()
            .filter(|e| e.w > 0)
            .map(|e| Edge::new(super_of[e.u as usize], super_of[e.v as usize], e.w))
            .filter(|e| !e.is_self_loop())
            .collect();
        Self {
            reduced: EdgeList {
                n: next as usize,
                edges,
            },
            super_of,
        }
    }

    /// Maps distances computed on the reduced graph back to the original
    /// vertex space.
    pub fn expand_dist(&self, reduced_dist: &[Dist]) -> Vec<Dist> {
        self.super_of
            .iter()
            .map(|&s| reduced_dist[s as usize])
            .collect()
    }

    /// The contracted source vertex for an original source.
    pub fn map_source(&self, source: VertexId) -> VertexId {
        self.super_of[source as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracts_zero_components() {
        // 0 -0- 1 -0- 2   3 -5- 0
        let el = EdgeList::from_triples(4, [(0, 1, 0), (1, 2, 0), (3, 0, 5)]);
        let z = ZeroContraction::contract(&el);
        assert_eq!(z.reduced.n, 2);
        assert_eq!(z.reduced.m(), 1);
        assert_eq!(z.super_of[0], z.super_of[1]);
        assert_eq!(z.super_of[1], z.super_of[2]);
        assert_ne!(z.super_of[0], z.super_of[3]);
        assert_eq!(z.reduced.edges[0].w, 5);
    }

    #[test]
    fn no_zero_edges_is_identity_shaped() {
        let el = EdgeList::from_triples(3, [(0, 1, 2), (1, 2, 3)]);
        let z = ZeroContraction::contract(&el);
        assert_eq!(z.reduced.n, 3);
        assert_eq!(z.reduced.m(), 2);
        assert_eq!(z.super_of, vec![0, 1, 2]);
    }

    #[test]
    fn positive_edge_inside_zero_component_becomes_loop_and_is_dropped() {
        let el = EdgeList::from_triples(2, [(0, 1, 0), (0, 1, 7)]);
        let z = ZeroContraction::contract(&el);
        assert_eq!(z.reduced.n, 1);
        assert_eq!(z.reduced.m(), 0);
    }

    #[test]
    fn expand_dist_fans_out() {
        let el = EdgeList::from_triples(4, [(0, 1, 0), (2, 3, 0)]);
        let z = ZeroContraction::contract(&el);
        assert_eq!(z.reduced.n, 2);
        let expanded = z.expand_dist(&[10, 20]);
        assert_eq!(expanded, vec![10, 10, 20, 20]);
        assert_eq!(z.map_source(3), z.map_source(2));
    }
}
