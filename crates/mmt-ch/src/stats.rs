//! Component Hierarchy statistics — the quantities behind the paper's
//! Table 2 ("Comp" = total components, "Children" = average children per
//! component, "Instance" = memory for a single SSSP instance) — plus the
//! canonical signature used to compare hierarchies across builders.

use crate::hierarchy::ComponentHierarchy;
use mmt_graph::types::VertexId;

/// Table 2-style statistics of a hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct ChStats {
    /// Graph vertices (leaves).
    pub n: usize,
    /// Total CH nodes, the paper's "Comp" column.
    pub components: usize,
    /// Internal nodes only.
    pub internal: usize,
    /// Average number of children per internal node, the "Children" column.
    pub avg_children: f64,
    /// Maximum number of children of any node.
    pub max_children: usize,
    /// Tree depth.
    pub depth: usize,
    /// Bytes of the frozen hierarchy itself.
    pub hierarchy_bytes: usize,
    /// Bytes of one per-query SSSP instance over this hierarchy (dist +
    /// mind + unsettled counters + settled bits), the "Instance" column.
    pub instance_bytes: usize,
}

impl ChStats {
    /// Computes the statistics.
    pub fn of(ch: &ComponentHierarchy) -> Self {
        let internal = ch.num_internal();
        let total_children: usize = (0..ch.num_nodes() as u32)
            .map(|v| ch.children(v).len())
            .sum();
        let max_children = (0..ch.num_nodes() as u32)
            .map(|v| ch.children(v).len())
            .max()
            .unwrap_or(0);
        Self {
            n: ch.n(),
            components: ch.num_nodes(),
            internal,
            avg_children: if internal == 0 {
                0.0
            } else {
                total_children as f64 / internal as f64
            },
            max_children,
            depth: ch.depth(),
            hierarchy_bytes: ch.heap_bytes(),
            instance_bytes: instance_bytes(ch),
        }
    }
}

/// Memory of one Thorup query instance over `ch`: an 8-byte atomic distance
/// per vertex, an 8-byte `mind` plus 4-byte unsettled counter per node, and
/// one settled bit per vertex. Must be kept in sync with
/// `mmt-thorup::instance::ThorupInstance`'s layout.
pub fn instance_bytes(ch: &ComponentHierarchy) -> usize {
    8 * ch.n() + (8 + 4) * ch.num_nodes() + ch.n().div_ceil(8)
}

/// A builder-independent description of a hierarchy: for every internal
/// node, its bucket shift and the sorted set of vertices below it, the
/// whole list sorted. Two correct builders must produce equal signatures
/// (node *ids* may differ, the component structure may not).
pub fn canonical_signature(ch: &ComponentHierarchy) -> Vec<(u8, Vec<VertexId>)> {
    let mut sig: Vec<(u8, Vec<VertexId>)> = (ch.n() as u32..ch.num_nodes() as u32)
        .map(|node| {
            let mut verts = ch.subtree_vertices(node);
            verts.sort_unstable();
            (ch.alpha(node), verts)
        })
        .collect();
    sig.sort();
    sig
}

impl std::fmt::Display for ChStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "components={} (internal {}) avg_children={:.2} max_children={} depth={} ch={} instance={}",
            self.components,
            self.internal,
            self.avg_children,
            self.max_children,
            self.depth,
            mmt_platform::mem::fmt_bytes(self.hierarchy_bytes),
            mmt_platform::mem::fmt_bytes(self.instance_bytes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder_dsu::build_serial;
    use crate::ChMode;
    use mmt_graph::gen::shapes;

    #[test]
    fn figure_one_stats() {
        let ch = build_serial(&shapes::figure_one(), ChMode::Collapsed);
        let s = ChStats::of(&ch);
        assert_eq!(s.n, 6);
        assert_eq!(s.components, 9);
        assert_eq!(s.internal, 3);
        assert!((s.avg_children - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_children, 3);
        assert_eq!(s.depth, 3);
        assert!(s.instance_bytes > 0);
        assert!(s.hierarchy_bytes > 0);
    }

    #[test]
    fn faithful_mode_has_more_components() {
        let el = shapes::figure_one();
        let collapsed = ChStats::of(&build_serial(&el, ChMode::Collapsed));
        let faithful = ChStats::of(&build_serial(&el, ChMode::Faithful));
        assert!(faithful.components > collapsed.components);
        // Chains have exactly one child, so the faithful average drops.
        assert!(faithful.avg_children < collapsed.avg_children);
    }

    #[test]
    fn signature_distinguishes_structures() {
        let a = canonical_signature(&build_serial(&shapes::path(4, 1), ChMode::Collapsed));
        let b = canonical_signature(&build_serial(&shapes::path(4, 2), ChMode::Collapsed));
        // Same tree shape but different alphas -> different signatures.
        assert_ne!(a, b);
    }

    #[test]
    fn instance_formula() {
        let ch = build_serial(&shapes::path(9, 1), ChMode::Collapsed);
        // 9 vertices, 10 nodes: 72 + 120 + 2
        assert_eq!(instance_bytes(&ch), 8 * 9 + 12 * 10 + 2);
    }

    #[test]
    fn display_contains_fields() {
        let ch = build_serial(&shapes::star(4, 2), ChMode::Collapsed);
        let text = ChStats::of(&ch).to_string();
        assert!(text.contains("components="));
        assert!(text.contains("instance="));
    }
}
