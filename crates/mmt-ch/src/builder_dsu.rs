//! Serial Component Hierarchy construction over a union-find structure.
//!
//! Runs the paper's Algorithm 1 with a single thread: edges are binned by
//! the phase that admits them (`phase(w) = floor(log2 w) + 1`, i.e. the
//! first `i` with `w < 2^i`), then each phase unions the newly admitted
//! edges and materialises CH nodes for the merged components. Used as the
//! correctness oracle for the parallel builder and as the fast path for
//! serial experiments (Table 1's preprocessing column).

use crate::hierarchy::{ChAssembler, ComponentHierarchy};
use crate::ChMode;
use mmt_cc::DisjointSets;
use mmt_graph::types::{EdgeList, Weight};

/// The phase at which an edge of weight `w ≥ 1` is admitted: the smallest
/// `i ≥ 1` with `w < 2^i`.
#[inline]
pub fn phase_of(w: Weight) -> u32 {
    debug_assert!(w >= 1, "Thorup requires positive weights");
    32 - w.leading_zeros()
}

/// Builds the CH of `el` serially. `mode` selects between the faithful
/// Algorithm 1 (a node per component per phase) and the collapsed form
/// (single-child chains skipped; at most `2n - 1` nodes).
pub fn build_serial(el: &EdgeList, mode: ChMode) -> ComponentHierarchy {
    let n = el.n;
    let mut asm = ChAssembler::new(n);
    if n == 0 {
        // An empty graph still needs a root node for a well-formed tree.
        let mut asm = ChAssembler::new(1);
        asm.add_node(0, vec![0]);
        return asm.finish();
    }
    let max_phase = el.edges.iter().map(|e| phase_of(e.w)).max().unwrap_or(0);
    // Counting-sort edge indices by phase.
    let mut by_phase: Vec<Vec<usize>> = vec![Vec::new(); max_phase as usize + 1];
    for (i, e) in el.edges.iter().enumerate() {
        if !e.is_self_loop() {
            by_phase[phase_of(e.w) as usize].push(i);
        }
    }

    let mut dsu = DisjointSets::new(n);
    // CH node currently representing each component, indexed by DSU root.
    let mut node_of: Vec<u32> = (0..n as u32).collect();
    // Scratch: per-root list of child nodes merged during the current phase.
    let mut pending: Vec<Option<Vec<u32>>> = vec![None; n];
    // Roots touched this phase (values may go stale after further unions;
    // stale entries are recognised by `pending[r].is_none()`).
    let mut touched: Vec<u32> = Vec::new();
    // Live roots, maintained only for faithful mode's chain nodes.
    let mut live_roots: Vec<u32> = (0..n as u32).collect();
    // Phase stamp: roots that received a merge node this phase must not
    // also get a chain node (they already have their phase-i component).
    let mut merged_stamp: Vec<u32> = vec![0; n];

    for phase in 1..=max_phase {
        touched.clear();
        for &ei in &by_phase[phase as usize] {
            let e = el.edges[ei];
            let (ru, rv) = (dsu.find(e.u), dsu.find(e.v));
            if ru == rv {
                continue;
            }
            let list_u = pending[ru as usize]
                .take()
                .unwrap_or_else(|| vec![node_of[ru as usize]]);
            let list_v = pending[rv as usize]
                .take()
                .unwrap_or_else(|| vec![node_of[rv as usize]]);
            dsu.union(ru, rv);
            let rn = dsu.find(ru);
            // Small-to-large append keeps the total merge work O(n log n).
            let (mut big, small) = if list_u.len() >= list_v.len() {
                (list_u, list_v)
            } else {
                (list_v, list_u)
            };
            big.extend(small);
            pending[rn as usize] = Some(big);
            touched.push(rn);
        }
        let alpha = (phase - 1) as u8;
        for &r in &touched {
            if let Some(children) = pending[r as usize].take() {
                debug_assert!(children.len() >= 2);
                let id = asm.add_node(alpha, children);
                node_of[r as usize] = id;
                merged_stamp[r as usize] = phase;
            }
        }
        if mode == ChMode::Faithful {
            // Every component that did not merge this phase gets a chain
            // node (Algorithm 1 creates a node per component per phase);
            // prune dead roots while walking.
            let mut next_roots = Vec::with_capacity(live_roots.len());
            for &r in &live_roots {
                if dsu.find(r) == r {
                    next_roots.push(r);
                }
            }
            live_roots = next_roots;
            for &r in &live_roots {
                if merged_stamp[r as usize] == phase {
                    continue;
                }
                let child = node_of[r as usize];
                let id = asm.add_node(alpha, vec![child]);
                node_of[r as usize] = id;
            }
        }
    }
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::shapes;
    use mmt_graph::CsrGraph;

    #[test]
    fn phase_boundaries() {
        assert_eq!(phase_of(1), 1);
        assert_eq!(phase_of(2), 2);
        assert_eq!(phase_of(3), 2);
        assert_eq!(phase_of(4), 3);
        assert_eq!(phase_of(7), 3);
        assert_eq!(phase_of(8), 4);
        assert_eq!(phase_of(u32::MAX), 32);
    }

    #[test]
    fn figure_one_collapsed_structure() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        ch.validate(Some(&g)).unwrap();
        // 6 leaves + 2 triangle nodes + root
        assert_eq!(ch.num_nodes(), 9);
        assert_eq!(ch.alpha(ch.root()), 3);
        let kids = ch.children(ch.root());
        assert_eq!(kids.len(), 2);
        assert_eq!(ch.leaves_below(kids[0]), 3);
        assert_eq!(ch.leaves_below(kids[1]), 3);
    }

    #[test]
    fn figure_one_faithful_has_chains() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Faithful);
        ch.validate(Some(&g)).unwrap();
        // Phases 1..4: triangles merge at phase 1, then chain through
        // phases 2 and 3, then the root merges at phase 4.
        // nodes: 6 leaves + 2 (phase1) + 2 + 2 (chains) + 1 root = 13
        assert_eq!(ch.num_nodes(), 13);
        assert_eq!(ch.children(ch.root()).len(), 2);
        assert_eq!(ch.alpha(ch.root()), 3);
    }

    #[test]
    fn uniform_weight_graph_is_two_level() {
        // All weights 1: a single phase merges everything under one node.
        let el = shapes::complete(5, 1);
        let ch = build_serial(&el, ChMode::Collapsed);
        assert_eq!(ch.num_nodes(), 6);
        assert_eq!(ch.alpha(ch.root()), 0);
        assert_eq!(ch.children(ch.root()).len(), 5);
        ch.validate(Some(&CsrGraph::from_edge_list(&el))).unwrap();
    }

    #[test]
    fn path_with_doubling_weights_is_a_caterpillar() {
        // Edges 1, 2, 4, 8: each phase merges exactly one more leaf.
        let el = EdgeList::from_triples(5, [(0, 1, 1), (1, 2, 2), (2, 3, 4), (3, 4, 8)]);
        let ch = build_serial(&el, ChMode::Collapsed);
        ch.validate(Some(&CsrGraph::from_edge_list(&el))).unwrap();
        assert_eq!(ch.num_nodes(), 5 + 4);
        assert_eq!(ch.depth(), 5);
        for (node, expect_alpha) in [(5u32, 0u8), (6, 1), (7, 2), (8, 3)] {
            assert_eq!(ch.alpha(node), expect_alpha);
            assert_eq!(ch.children(node).len(), 2);
        }
    }

    #[test]
    fn disconnected_graph_gets_synthetic_root() {
        let el = EdgeList::from_triples(4, [(0, 1, 3), (2, 3, 3)]);
        let ch = build_serial(&el, ChMode::Collapsed);
        ch.validate(Some(&CsrGraph::from_edge_list(&el))).unwrap();
        assert_eq!(ch.children(ch.root()).len(), 2);
        assert_eq!(ch.alpha(ch.root()), crate::hierarchy::SYNTHETIC_ROOT_ALPHA);
    }

    #[test]
    fn self_loops_ignored() {
        let el = EdgeList::from_triples(2, [(0, 0, 1), (1, 1, 4), (0, 1, 2)]);
        let ch = build_serial(&el, ChMode::Collapsed);
        assert_eq!(ch.num_nodes(), 3);
        assert_eq!(ch.alpha(ch.root()), 1);
    }

    #[test]
    fn parallel_edges_harmless() {
        let el = EdgeList::from_triples(2, [(0, 1, 5), (0, 1, 5), (0, 1, 1)]);
        let ch = build_serial(&el, ChMode::Collapsed);
        assert_eq!(ch.num_nodes(), 3);
        // merged at phase 1 by the weight-1 copy
        assert_eq!(ch.alpha(ch.root()), 0);
    }

    #[test]
    fn edgeless_and_empty_graphs() {
        let ch = build_serial(&EdgeList::new(3), ChMode::Collapsed);
        assert_eq!(ch.n(), 3);
        assert_eq!(ch.children(ch.root()).len(), 3);
        ch.validate(None).unwrap();
        let ch = build_serial(&EdgeList::new(0), ChMode::Collapsed);
        assert_eq!(ch.num_nodes(), 2);
    }

    #[test]
    fn single_vertex() {
        let ch = build_serial(&EdgeList::new(1), ChMode::Collapsed);
        assert_eq!(ch.num_nodes(), 1);
        assert!(ch.is_leaf(ch.root()));
    }
}
