//! Binary persistence for Component Hierarchies.
//!
//! The paper's economics make the CH a *reusable artifact*: it takes 2–6
//! query-times to build (their Table 5) and then serves unlimited queries
//! and thresholds. Road-network practice (their §1: "serial precomputation
//! times range from 1 to 11 hours") makes persisting such artifacts
//! mandatory. The format is little-endian, versioned, and validated on
//! load:
//!
//! ```text
//! magic "MMTCH\0"  u8 version  u64 n  u64 num_nodes  u32 root
//! parent[num_nodes]: u32      alpha[num_nodes]: u8
//! children_offsets[num_nodes+1]: u32   children[...]: u32
//! ```
//!
//! Leaf counts are recomputed on load (cheaper than storing), and the
//! structural validator runs before the hierarchy is handed back, so a
//! corrupted or truncated file can never produce wrong distances.

use crate::hierarchy::{ChAssembler, ComponentHierarchy};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 6] = b"MMTCH\0";
const VERSION: u8 = 1;

/// Errors from the CH reader.
#[derive(Debug)]
pub enum ChIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Format(String),
}

impl std::fmt::Display for ChIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChIoError::Io(e) => write!(f, "io error: {e}"),
            ChIoError::Format(msg) => write!(f, "bad CH file: {msg}"),
        }
    }
}

impl std::error::Error for ChIoError {}

impl From<io::Error> for ChIoError {
    fn from(e: io::Error) -> Self {
        ChIoError::Io(e)
    }
}

fn bad(msg: impl Into<String>) -> ChIoError {
    ChIoError::Format(msg.into())
}

/// Serialises `ch` to `writer`.
pub fn write_ch<W: Write>(mut writer: W, ch: &ComponentHierarchy) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION])?;
    writer.write_all(&(ch.n() as u64).to_le_bytes())?;
    writer.write_all(&(ch.num_nodes() as u64).to_le_bytes())?;
    writer.write_all(&ch.root().to_le_bytes())?;
    for node in 0..ch.num_nodes() as u32 {
        writer.write_all(&ch.parent(node).to_le_bytes())?;
    }
    for node in 0..ch.num_nodes() as u32 {
        writer.write_all(&[ch.alpha(node)])?;
    }
    // Children CSR, reconstructed from the accessor.
    let mut offset = 0u32;
    writer.write_all(&offset.to_le_bytes())?;
    for node in 0..ch.num_nodes() as u32 {
        offset += ch.children(node).len() as u32;
        writer.write_all(&offset.to_le_bytes())?;
    }
    for node in 0..ch.num_nodes() as u32 {
        for &c in ch.children(node) {
            writer.write_all(&c.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialises and structurally validates a hierarchy.
pub fn read_ch<R: Read>(mut reader: R) -> Result<ComponentHierarchy, ChIoError> {
    let mut magic = [0u8; 6];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("wrong magic"));
    }
    let version = read_u8(&mut reader)?;
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let n = read_u64(&mut reader)? as usize;
    let num_nodes = read_u64(&mut reader)? as usize;
    let root = read_u32(&mut reader)?;
    if n == 0 || num_nodes < n || num_nodes > 64 * n.max(1) + 64 {
        return Err(bad(format!("implausible sizes n={n} nodes={num_nodes}")));
    }
    let parent: Vec<u32> = read_u32s(&mut reader, num_nodes)?;
    let mut alpha = vec![0u8; num_nodes];
    reader.read_exact(&mut alpha)?;
    let offsets: Vec<u32> = read_u32s(&mut reader, num_nodes + 1)?;
    // Every node except the root is someone's child.
    let num_children = *offsets.last().unwrap() as usize;
    if num_children != num_nodes - 1 {
        return Err(bad("children count inconsistent with node count"));
    }
    let children: Vec<u32> = read_u32s(&mut reader, num_children)?;

    // Rebuild through the assembler so leaf counts and internal layout are
    // recomputed by trusted code, then run the structural validator.
    let mut asm = ChAssembler::new(n);
    for node in n..num_nodes {
        let lo = offsets[node] as usize;
        let hi = offsets[node + 1] as usize;
        if lo > hi || hi > children.len() {
            return Err(bad(format!("bad CSR range at node {node}")));
        }
        let kids = children[lo..hi].to_vec();
        if kids.is_empty() {
            return Err(bad(format!("internal node {node} has no children")));
        }
        for &k in &kids {
            if k as usize >= node {
                return Err(bad(format!("child {k} does not precede parent {node}")));
            }
        }
        let id = asm.add_node(alpha[node], kids);
        if id as usize != node {
            return Err(bad("node ids not dense"));
        }
    }
    // Leaves must have empty CSR ranges.
    for leaf in 0..n {
        if offsets[leaf] != offsets[leaf + 1] {
            return Err(bad(format!("leaf {leaf} has children")));
        }
    }
    let ch = asm.finish();
    if ch.root() != root {
        return Err(bad(format!(
            "stored root {root} disagrees with reconstruction {}",
            ch.root()
        )));
    }
    // Parent array must round-trip.
    for node in 0..num_nodes as u32 {
        if ch.parent(node) != parent[node as usize] {
            return Err(bad(format!("parent mismatch at node {node}")));
        }
    }
    ch.validate(None).map_err(bad)?;
    Ok(ch)
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, ChIoError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ChIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ChIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32s<R: Read>(r: &mut R, count: usize) -> Result<Vec<u32>, ChIoError> {
    let mut bytes = vec![0u8; count * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder_dsu::build_serial;
    use crate::ChMode;
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn round_trip(ch: &ComponentHierarchy) -> ComponentHierarchy {
        let mut buf = Vec::new();
        write_ch(&mut buf, ch).unwrap();
        read_ch(&buf[..]).unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        for mode in [ChMode::Collapsed, ChMode::Faithful] {
            let ch = build_serial(&shapes::figure_one(), mode);
            assert_eq!(round_trip(&ch), ch);
        }
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 8);
        spec.seed = 66;
        let ch = build_serial(&spec.generate(), ChMode::Collapsed);
        assert_eq!(round_trip(&ch), ch);
    }

    #[test]
    fn disconnected_with_synthetic_root_round_trips() {
        let el = mmt_graph::types::EdgeList::from_triples(4, [(0, 1, 3)]);
        let ch = build_serial(&el, ChMode::Collapsed);
        assert_eq!(round_trip(&ch), ch);
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let ch = build_serial(&shapes::path(3, 1), ChMode::Collapsed);
        let mut buf = Vec::new();
        write_ch(&mut buf, &ch).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(read_ch(&bad_magic[..]).is_err());
        let mut bad_version = buf.clone();
        bad_version[6] = 99;
        assert!(read_ch(&bad_version[..]).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let ch = build_serial(&shapes::figure_one(), ChMode::Collapsed);
        let mut buf = Vec::new();
        write_ch(&mut buf, &ch).unwrap();
        for cut in [5, 7, 20, buf.len() - 1] {
            assert!(read_ch(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_corrupted_structure() {
        let ch = build_serial(&shapes::figure_one(), ChMode::Collapsed);
        let mut buf = Vec::new();
        write_ch(&mut buf, &ch).unwrap();
        // Flip a byte somewhere in the parent array region; the validator
        // (or the round-trip checks) must catch every flip we try.
        let parent_region = 6 + 1 + 8 + 8 + 4;
        for i in 0..4 * ch.num_nodes() {
            let mut corrupt = buf.clone();
            corrupt[parent_region + i] ^= 0x41;
            assert!(read_ch(&corrupt[..]).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn loaded_hierarchy_answers_queries() {
        let el = shapes::figure_one();
        let ch = round_trip(&build_serial(&el, ChMode::Collapsed));
        let g = mmt_graph::CsrGraph::from_edge_list(&el);
        ch.validate(Some(&g)).unwrap();
    }

    #[test]
    fn error_display() {
        let e = bad("boom");
        assert!(e.to_string().contains("boom"));
    }
}
