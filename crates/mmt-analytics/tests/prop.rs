//! Property tests: centrality against a brute-force oracle, diameter
//! bounds against exhaustive eccentricities.

use mmt_analytics::{closeness_centrality, diameter_lower_bound, eccentricity_weighted};
use mmt_baselines::dijkstra;
use mmt_ch::{build_serial, ChMode};
use mmt_graph::types::{Edge, EdgeList, INF};
use mmt_graph::CsrGraph;
use mmt_thorup::ThorupSolver;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..30).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..50).prop_map(|(u, v, w)| Edge::new(u, v, w));
        proptest::collection::vec(edge, 0..80).prop_map(move |edges| EdgeList { n, edges })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closeness_matches_bruteforce(el in arb_graph()) {
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let seeds: Vec<u32> = (0..g.n() as u32).collect();
        let scores = closeness_centrality(&solver, &seeds);
        for (s, score) in seeds.iter().zip(&scores) {
            let dist = dijkstra(&g, *s);
            let reached = dist.iter().filter(|&&d| d != INF).count();
            let sum: u64 = dist.iter().filter(|&&d| d != INF).sum();
            prop_assert_eq!(score.reached, reached);
            prop_assert_eq!(score.distance_sum, sum);
            let want = if reached > 1 && sum > 0 {
                (reached - 1) as f64 / sum as f64
            } else {
                0.0
            };
            prop_assert!((score.closeness - want).abs() < 1e-12);
            let want_h: f64 = dist.iter().enumerate()
                .filter(|&(u, &d)| u as u32 != *s && d != INF && d > 0)
                .map(|(_, &d)| 1.0 / d as f64)
                .sum();
            prop_assert!((score.harmonic - want_h).abs() < 1e-9);
        }
    }

    #[test]
    fn diameter_bound_is_sound(el in arb_graph(), seed in 0u32..30) {
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let seed = seed % g.n() as u32;
        let exact: u64 = (0..g.n() as u32)
            .map(|v| {
                dijkstra(&g, v).into_iter().filter(|&d| d != INF).max().unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        let bound = diameter_lower_bound(&solver, seed);
        prop_assert!(bound <= exact, "bound {} > diameter {}", bound, exact);
        // eccentricity agrees with the Dijkstra oracle
        let ecc = eccentricity_weighted(&solver, seed);
        let want = dijkstra(&g, seed).into_iter().filter(|&d| d != INF).max().unwrap_or(0);
        prop_assert_eq!(ecc, want);
    }
}
