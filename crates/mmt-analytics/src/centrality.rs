//! Closeness and harmonic centrality, exact, for a set of seed vertices.
//!
//! Both scores need the full distance vector from each seed — one SSSP per
//! seed — which the shared Component Hierarchy turns into a single
//! simultaneous batch (`BatchMode::Simultaneous`). Definitions follow the
//! standard disconnected-graph conventions:
//!
//! * closeness `C(v) = (r - 1) / Σ_{u reached} d(v, u)` where `r` is the
//!   number of reached vertices (Wasserman–Faust unnormalised variant is
//!   available through the raw sums);
//! * harmonic `H(v) = Σ_{u ≠ v} 1 / d(v, u)` with `1/∞ = 0` — robust to
//!   disconnection by construction.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_thorup::{BatchMode, QueryEngine, ThorupSolver};

/// Centrality results for one seed vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralityScores {
    /// The seed vertex.
    pub vertex: VertexId,
    /// Number of vertices reached (including the seed).
    pub reached: usize,
    /// Sum of finite distances from the seed.
    pub distance_sum: u64,
    /// Closeness centrality (0.0 if nothing else is reachable).
    pub closeness: f64,
    /// Harmonic centrality.
    pub harmonic: f64,
}

fn scores_from_distances(vertex: VertexId, dist: &[Dist]) -> CentralityScores {
    let mut reached = 0usize;
    let mut sum = 0u64;
    let mut harmonic = 0.0f64;
    for (u, &d) in dist.iter().enumerate() {
        if d == INF {
            continue;
        }
        reached += 1;
        sum += d;
        if u as VertexId != vertex && d > 0 {
            harmonic += 1.0 / d as f64;
        }
    }
    let closeness = if reached > 1 && sum > 0 {
        (reached - 1) as f64 / sum as f64
    } else {
        0.0
    };
    CentralityScores {
        vertex,
        reached,
        distance_sum: sum,
        closeness,
        harmonic,
    }
}

/// Exact closeness centrality for `seeds`, one simultaneous shared-CH SSSP
/// batch. Returns scores in seed order.
pub fn closeness_centrality(
    solver: &ThorupSolver<'_>,
    seeds: &[VertexId],
) -> Vec<CentralityScores> {
    let engine = QueryEngine::new(*solver);
    let batch = engine.solve_batch(seeds, BatchMode::Simultaneous);
    seeds
        .iter()
        .zip(&batch)
        .map(|(&s, dist)| scores_from_distances(s, dist))
        .collect()
}

/// Exact harmonic centrality for `seeds` (same batch machinery; returned
/// as bare scores for callers that do not need the full record).
pub fn harmonic_centrality(solver: &ThorupSolver<'_>, seeds: &[VertexId]) -> Vec<f64> {
    closeness_centrality(solver, seeds)
        .into_iter()
        .map(|s| s.harmonic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;
    use mmt_graph::CsrGraph;

    fn solver_fixture(el: &EdgeList) -> (CsrGraph, mmt_ch::ComponentHierarchy) {
        (
            CsrGraph::from_edge_list(el),
            build_serial(el, ChMode::Collapsed),
        )
    }

    #[test]
    fn star_center_dominates() {
        let el = shapes::star(9, 2);
        let (g, ch) = solver_fixture(&el);
        let solver = ThorupSolver::new(&g, &ch);
        let seeds: Vec<u32> = (0..9).collect();
        let scores = closeness_centrality(&solver, &seeds);
        // Center: 8 vertices at distance 2 -> closeness 8/16 = 0.5.
        assert!((scores[0].closeness - 0.5).abs() < 1e-12);
        // Leaves: 1 at 2, 7 at 4 -> 8/30.
        assert!((scores[1].closeness - 8.0 / 30.0).abs() < 1e-12);
        for leaf in 2..9 {
            assert!(scores[0].closeness > scores[leaf].closeness);
            assert!(scores[0].harmonic > scores[leaf].harmonic);
        }
    }

    #[test]
    fn harmonic_exact_on_path() {
        let el = shapes::path(3, 2);
        let (g, ch) = solver_fixture(&el);
        let solver = ThorupSolver::new(&g, &ch);
        let h = harmonic_centrality(&solver, &[0, 1]);
        // from 0: 1/2 + 1/4; from 1 (middle): 1/2 + 1/2
        assert!((h[0] - 0.75).abs() < 1e-12);
        assert!((h[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_vertex_scores_zero() {
        let el = EdgeList::from_triples(3, [(0, 1, 4)]);
        let (g, ch) = solver_fixture(&el);
        let solver = ThorupSolver::new(&g, &ch);
        let scores = closeness_centrality(&solver, &[2, 0]);
        assert_eq!(scores[0].reached, 1);
        assert_eq!(scores[0].closeness, 0.0);
        assert_eq!(scores[0].harmonic, 0.0);
        assert_eq!(scores[1].reached, 2);
        assert!((scores[1].closeness - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_seed_list() {
        let el = shapes::path(2, 1);
        let (g, ch) = solver_fixture(&el);
        let solver = ThorupSolver::new(&g, &ch);
        assert!(closeness_centrality(&solver, &[]).is_empty());
    }
}
