//! Component-structure summaries: size distribution, giant-component
//! fraction, isolated-vertex counts — the standard first look at an
//! unstructured network before running distance analytics on it.

use mmt_cc::{connected_components, CcAlgorithm, EdgeSet};
use mmt_graph::types::EdgeList;
use mmt_platform::Log2Histogram;

/// Summary of a graph's connected-component structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSummary {
    /// Number of components.
    pub count: usize,
    /// Size of the largest component.
    pub giant_size: usize,
    /// Fraction of vertices in the largest component.
    pub giant_fraction: f64,
    /// Number of isolated vertices (singleton components).
    pub isolated: usize,
    /// Log2 histogram of component sizes.
    pub size_histogram: Log2Histogram,
}

impl ComponentSummary {
    /// Computes the summary with the parallel label-propagation engine.
    pub fn of(el: &EdgeList) -> Self {
        Self::of_with(el, CcAlgorithm::LabelPropagation)
    }

    /// Computes the summary with an explicit CC engine.
    pub fn of_with(el: &EdgeList, algo: CcAlgorithm) -> Self {
        let comps = connected_components(
            EdgeSet {
                n: el.n,
                edges: &el.edges,
            },
            algo,
        );
        let mut size = std::collections::HashMap::new();
        for &l in &comps.labels {
            *size.entry(l).or_insert(0usize) += 1;
        }
        let giant_size = size.values().copied().max().unwrap_or(0);
        let isolated = size.values().filter(|&&s| s == 1).count();
        let size_histogram = Log2Histogram::from_samples(size.values().map(|&s| s as u64));
        Self {
            count: comps.count,
            giant_size,
            giant_fraction: if el.n == 0 {
                0.0
            } else {
                giant_size as f64 / el.n as f64
            },
            isolated,
            size_histogram,
        }
    }
}

impl std::fmt::Display for ComponentSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} components (giant {} = {:.1}%, isolated {}); sizes {}",
            self.count,
            self.giant_size,
            100.0 * self.giant_fraction,
            self.isolated,
            self.size_histogram.summary()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::types::EdgeList;

    #[test]
    fn mixed_components() {
        // {0,1,2} + {3,4} + isolated 5, 6
        let el = EdgeList::from_triples(7, [(0, 1, 1), (1, 2, 1), (3, 4, 1)]);
        let s = ComponentSummary::of(&el);
        assert_eq!(s.count, 4);
        assert_eq!(s.giant_size, 3);
        assert_eq!(s.isolated, 2);
        assert!((s.giant_fraction - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.size_histogram.total(), 4);
    }

    #[test]
    fn connected_graph_is_one_giant() {
        let el = mmt_graph::gen::shapes::complete(6, 2);
        let s = ComponentSummary::of(&el);
        assert_eq!(s.count, 1);
        assert_eq!(s.giant_fraction, 1.0);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn engines_agree() {
        let el = EdgeList::from_triples(6, [(0, 1, 1), (2, 3, 1)]);
        for algo in [
            CcAlgorithm::SerialDsu,
            CcAlgorithm::ShiloachVishkin,
            CcAlgorithm::ConcurrentDsu,
        ] {
            assert_eq!(
                ComponentSummary::of(&el),
                ComponentSummary::of_with(&el, algo)
            );
        }
    }

    #[test]
    fn empty_graph() {
        let s = ComponentSummary::of(&EdgeList::new(0));
        assert_eq!(s.count, 0);
        assert_eq!(s.giant_fraction, 0.0);
    }

    #[test]
    fn display_mentions_giant() {
        let el = EdgeList::from_triples(3, [(0, 1, 1)]);
        let text = ComponentSummary::of(&el).to_string();
        assert!(text.contains("components"));
        assert!(text.contains("giant 2"));
    }
}
