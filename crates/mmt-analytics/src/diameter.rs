//! Eccentricity and diameter machinery.
//!
//! Exact weighted diameters need all-pairs work; practice uses the
//! double-sweep lower bound (run SSSP, jump to the farthest vertex, run
//! again — exact on trees, excellent on most real graphs) and sampling.
//! Both reduce to batches of single-source computations, i.e. the shared
//! Component Hierarchy's home turf.

use mmt_graph::types::{Dist, VertexId, INF};
use mmt_thorup::{ThorupInstance, ThorupSolver};

/// Weighted eccentricity of `v`: the largest finite distance from it.
pub fn eccentricity_weighted(solver: &ThorupSolver<'_>, v: VertexId) -> Dist {
    let inst = ThorupInstance::new(solver.hierarchy());
    solver.solve_into(&inst, v);
    inst.distances()
        .into_iter()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0)
}

fn farthest(dist: &[Dist]) -> (VertexId, Dist) {
    let mut best = (0u32, 0u64);
    for (v, &d) in dist.iter().enumerate() {
        if d != INF && d > best.1 {
            best = (v as u32, d);
        }
    }
    best
}

/// Double-sweep diameter lower bound starting from `seed`: the
/// eccentricity of the farthest vertex from the farthest vertex from
/// `seed`. Exact on trees; a lower bound in general.
pub fn diameter_lower_bound(solver: &ThorupSolver<'_>, seed: VertexId) -> Dist {
    let inst = ThorupInstance::new(solver.hierarchy());
    solver.solve_into(&inst, seed);
    let (far, _) = farthest(&inst.distances());
    inst.reset(solver.hierarchy());
    solver.solve_into(&inst, far);
    farthest(&inst.distances()).1
}

/// Sampled diameter estimate: the maximum double-sweep bound over the
/// given seeds (still a lower bound; more seeds, tighter).
pub fn estimate_diameter(solver: &ThorupSolver<'_>, seeds: &[VertexId]) -> Dist {
    seeds
        .iter()
        .map(|&s| diameter_lower_bound(solver, s))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_baselines::dijkstra;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;
    use mmt_graph::CsrGraph;

    #[test]
    fn path_eccentricities() {
        let el = shapes::path(5, 3);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        assert_eq!(eccentricity_weighted(&solver, 0), 12);
        assert_eq!(eccentricity_weighted(&solver, 2), 6);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        // A weighted tree: diameter = longest leaf-to-leaf path.
        let el = EdgeList::from_triples(6, [(0, 1, 5), (1, 2, 1), (1, 3, 9), (0, 4, 2), (4, 5, 7)]);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        // True diameter: 3 -> 1 -> 0 -> 4 -> 5 = 9 + 5 + 2 + 7 = 23.
        for seed in 0..6u32 {
            assert_eq!(diameter_lower_bound(&solver, seed), 23, "seed {seed}");
        }
    }

    #[test]
    fn estimate_never_exceeds_true_diameter() {
        use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 5);
        spec.seed = 4;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        // exact diameter by n Dijkstras (test-scale only)
        let exact: u64 = (0..g.n() as u32)
            .map(|s| {
                dijkstra(&g, s)
                    .into_iter()
                    .filter(|&d| d != mmt_graph::types::INF)
                    .max()
                    .unwrap()
            })
            .max()
            .unwrap();
        let est = estimate_diameter(&solver, &[0, 7, 31]);
        assert!(est <= exact);
        assert!(
            est * 2 >= exact,
            "double sweep is at least half the diameter"
        );
    }

    #[test]
    fn isolated_vertex_has_zero_eccentricity() {
        let el = EdgeList::from_triples(3, [(0, 1, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        assert_eq!(eccentricity_weighted(&solver, 2), 0);
        assert_eq!(estimate_diameter(&solver, &[]), 0);
    }
}
