//! Distance-based network analytics over shared-hierarchy batch SSSP.
//!
//! The paper's introduction motivates shortest paths on "unstructured
//! networks, such as social networks and economic transaction networks" —
//! where the consumer is rarely a single query but an *analytic*: a
//! centrality score, a diameter estimate, a reachability profile, each of
//! which is a batch of single-source computations. That is exactly the
//! workload the shared Component Hierarchy was shown to win (the paper's
//! Figure 5), so this crate implements the analytics on top of
//! `mmt-thorup`'s batch engine:
//!
//! * [`centrality`] — exact closeness and harmonic centrality for a seed
//!   set (weighted, batch SSSP), plus degree centrality;
//! * [`diameter`] — eccentricity, double-sweep diameter lower bounds, and
//!   sampled diameter estimation (weighted and hop-count variants);
//! * [`components`] — component-structure summaries built on `mmt-cc`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centrality;
pub mod components;
pub mod diameter;

pub use centrality::{closeness_centrality, harmonic_centrality, CentralityScores};
pub use components::ComponentSummary;
pub use diameter::{diameter_lower_bound, eccentricity_weighted, estimate_diameter};
