//! Failure injection and degenerate-input coverage across the whole stack:
//! the inputs a downstream user will eventually feed us.

use mmt_sssp::prelude::*;

#[test]
fn single_vertex_everything() {
    let el = EdgeList::new(1);
    assert_eq!(mmt_sssp::shortest_paths(&el, 0).unwrap(), vec![0]);
    let g = CsrGraph::from_edge_list(&el);
    assert_eq!(dijkstra(&g, 0), vec![0]);
    assert_eq!(goldberg_sssp(&g, 0), vec![0]);
    assert_eq!(delta_stepping(&g, 0, DeltaConfig::new(1)), vec![0]);
    assert_eq!(bidirectional_dijkstra(&g, 0, 0), 0);
}

#[test]
fn two_isolated_vertices() {
    let el = EdgeList::new(2);
    let d = mmt_sssp::shortest_paths(&el, 1).unwrap();
    assert_eq!(d, vec![INF, 0]);
}

#[test]
fn all_self_loops() {
    let el = EdgeList::from_triples(3, [(0, 0, 5), (1, 1, 1), (2, 2, 9)]);
    let d = mmt_sssp::shortest_paths(&el, 0).unwrap();
    assert_eq!(d, vec![0, INF, INF]);
}

#[test]
fn weight_one_everywhere_equals_bfs() {
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 0);
    let mut el = spec.generate();
    for e in &mut el.edges {
        e.w = 1;
    }
    let g = CsrGraph::from_edge_list(&el);
    assert_eq!(mmt_sssp::shortest_paths(&el, 3).unwrap(), bfs(&g, 3));
}

#[test]
fn maximum_weight_edges_do_not_overflow() {
    // A path of max-u32 weights: distances exceed u32 but fit u64.
    let el = EdgeList::from_triples(5, (0..4u32).map(|i| (i, i + 1, u32::MAX)));
    let d = mmt_sssp::shortest_paths(&el, 0).unwrap();
    assert_eq!(d[4], 4 * u32::MAX as u64);
    let g = CsrGraph::from_edge_list(&el);
    verify_sssp_engine("thorup", &g, 0, &d).unwrap();
}

#[test]
fn heavily_duplicated_parallel_edges() {
    let mut el = EdgeList::new(4);
    for _ in 0..50 {
        el.push(0, 1, 7);
        el.push(1, 2, 3);
    }
    el.push(2, 3, 1);
    let g = CsrGraph::from_edge_list(&el);
    let d = mmt_sssp::shortest_paths(&el, 0).unwrap();
    assert_eq!(d, vec![0, 7, 10, 11]);
    verify_sssp_engine("thorup", &g, 0, &d).unwrap();
}

#[test]
fn star_with_huge_fanout_exercises_parallel_gather() {
    // One CH node with ~20k children: the AlwaysParallel and Selective
    // paths both cross their thresholds here.
    let n = 20_000;
    let el = shapes::star(n, 3);
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    for strategy in [
        ToVisitStrategy::AlwaysParallel,
        ToVisitStrategy::selective_default(),
    ] {
        let solver =
            ThorupSolver::new(&g, &ch).with_config(ThorupConfig::new().with_strategy(strategy));
        let d = solver.solve(0);
        assert!(d[1..].iter().all(|&x| x == 3));
    }
}

#[test]
fn caterpillar_of_doubling_weights_exercises_deep_recursion() {
    // Each edge doubles: every phase merges exactly one new leaf, giving
    // the deepest possible collapsed hierarchy for 32-bit weights.
    let n = 31;
    let el = EdgeList::from_triples(n, (0..n as u32 - 1).map(|i| (i, i + 1, 1u32 << i.min(30))));
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    assert_eq!(ch.depth(), n); // leaf + n-1 merge levels
    let solver = ThorupSolver::new(&g, &ch);
    assert_eq!(solver.solve(0), dijkstra(&g, 0));
}

#[test]
fn dimacs_reader_rejects_truncated_file() {
    let text = "p sp 10 4\na 1 2 3\na 2 1 3\n";
    assert!(mmt_sssp::graph::dimacs::read_gr(text.as_bytes()).is_err());
}

#[test]
fn solver_panics_on_mismatched_hierarchy() {
    let el_a = shapes::path(4, 1);
    let el_b = shapes::path(5, 1);
    let g = CsrGraph::from_edge_list(&el_a);
    let ch = build_parallel(&el_b);
    let result = std::panic::catch_unwind(|| ThorupSolver::new(&g, &ch));
    assert!(result.is_err(), "mismatched sizes must be rejected loudly");
}

#[test]
fn out_of_range_source_panics() {
    let el = shapes::path(3, 1);
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let solver = ThorupSolver::new(&g, &ch);
    let result = std::panic::catch_unwind(|| solver.solve(99));
    assert!(result.is_err());
}

#[test]
fn c_equals_one_single_phase_hierarchy() {
    // All weights exactly 1: the CH is two levels and Thorup degenerates
    // to parallel BFS-like expansion.
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 9, 0);
    let el = spec.generate();
    assert_eq!(el.max_weight(), Some(1));
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    assert_eq!(ch.depth(), 2);
    assert_eq!(ThorupSolver::new(&g, &ch).solve(0), dijkstra(&g, 0));
}

#[test]
fn rmat_with_many_isolated_vertices() {
    // R-MAT at m = n/2 leaves big isolated swaths; the synthetic root and
    // INF handling must cope.
    let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, 9, 6);
    spec.seed = 55;
    let mut el = spec.generate();
    el.edges.truncate(el.edges.len() / 8);
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    ch.validate(None).unwrap();
    let d = ThorupSolver::new(&g, &ch).solve(0);
    assert_eq!(d, dijkstra(&g, 0));
    assert!(d.contains(&INF));
}
