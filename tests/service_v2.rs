//! End-to-end acceptance for the v2 query-serving layer, exercised
//! through the facade: oracle-checked answers, typed overload/deadline
//! rejections, cancellation, and a consistent metrics snapshot.

use mmt_sssp::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// One-tenant registry: the registry-era spelling of the old
/// single-graph constructor.
fn single(g: &CsrGraph, ch: Arc<ComponentHierarchy>) -> GraphRegistry {
    let mut registry = GraphRegistry::new();
    registry.register("default", g, ch).unwrap();
    registry
}

fn fixture(log_n: u32) -> (Arc<CsrGraph>, Arc<ComponentHierarchy>) {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, 6);
    spec.seed = 11;
    let el = spec.generate();
    (
        Arc::new(CsrGraph::from_edge_list(&el)),
        Arc::new(build_parallel(&el)),
    )
}

#[test]
fn serving_layer_end_to_end() {
    let (graph, ch) = fixture(9);
    let service = QueryService::builder()
        .workers(3)
        .queue_capacity(64)
        .build_registry(single(&graph, ch))
        .unwrap();

    // Answers match the Dijkstra oracle, full and targeted.
    let oracle = dijkstra(&graph, 3);
    let full = service.submit(3u32).unwrap().wait().unwrap();
    assert_eq!(full, oracle);
    for t in [0u32, 17, 200] {
        let d = service
            .submit_p2p(QueryRequest::new(3).target(t))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(d, oracle[t as usize]);
    }

    // An already-expired deadline is a typed error, not a panic or hang.
    let late = service
        .submit(QueryRequest::new(0).deadline(Duration::ZERO))
        .unwrap()
        .wait();
    assert_eq!(late.unwrap_err(), ServiceError::DeadlineExceeded);

    // Out-of-range queries are typed errors through the facade too.
    let bad: MmtError = service.submit(u32::MAX).unwrap_err().into();
    assert!(matches!(bad, MmtError::Input(_)));

    // The snapshot accounts for everything that happened above.
    let snap = service.metrics().snapshot();
    assert_eq!(snap.served_total(), 4);
    assert_eq!(snap.rejected_deadline, 1);
    assert_eq!(snap.rejected_input, 1);
    assert_eq!(snap.rejected_total(), 2);
    assert!(snap.latency_us.total() > 0);
    assert!(snap.queue_wait_us.total() > 0);
    assert!(snap.to_json().contains("\"served_full\":1"));
}

#[test]
fn overload_is_typed_and_non_blocking() {
    let (graph, ch) = fixture(6);
    // Zero workers: nothing drains the queue, so the third try_submit must
    // come back Overloaded immediately rather than blocking.
    let service = QueryService::builder()
        .workers(0)
        .queue_capacity(2)
        .build_registry(single(&graph, ch))
        .unwrap();
    let _h1 = service.try_submit(0u32).unwrap();
    let _h2 = service.try_submit(1u32).unwrap();
    assert_eq!(
        service.try_submit(2u32).unwrap_err(),
        ServiceError::Overloaded { capacity: 2 }
    );
    let snap = service.metrics().snapshot();
    assert_eq!(snap.rejected_overload, 1);
    assert_eq!(snap.queue_depth, 2);
}

#[test]
fn concurrent_clients_mixed_queries_under_deadlines() {
    let (graph, ch) = fixture(9);
    let service = Arc::new(
        QueryService::builder()
            .workers(4)
            .queue_capacity(128)
            .default_deadline(Duration::from_secs(60))
            .build_registry(single(&graph, ch))
            .unwrap(),
    );
    let n = graph.n() as u32;
    let oracle_src = 5u32;
    let oracle = dijkstra(&graph, oracle_src);

    std::thread::scope(|s| {
        for c in 0..6u32 {
            let service = Arc::clone(&service);
            let oracle = &oracle;
            s.spawn(move || {
                for q in 0..8u32 {
                    if (c + q) % 3 == 0 {
                        let t = (c * 131 + q * 17) % n;
                        let d = service
                            .submit_p2p(QueryRequest::new(oracle_src).target(t))
                            .unwrap()
                            .wait()
                            .unwrap();
                        assert_eq!(d, oracle[t as usize]);
                    } else {
                        let d = service.submit(oracle_src).unwrap().wait().unwrap();
                        assert_eq!(&d, oracle);
                    }
                }
            });
        }
    });

    let snap = service.metrics().snapshot();
    assert_eq!(snap.served_total(), 48);
    assert_eq!(snap.rejected_total(), 0);
    assert_eq!(snap.latency_us.total(), 48);
    assert_eq!(snap.inflight, 0);
    assert_eq!(snap.queue_depth, 0);
}

#[test]
fn dropped_handle_cancels_and_service_stays_healthy() {
    let (graph, ch) = fixture(12);
    let service = QueryService::builder()
        .workers(1)
        .build_registry(single(&graph, ch))
        .unwrap();
    drop(service.submit(0u32).unwrap()); // withdraw immediately
    let d = service.submit(1u32).unwrap().wait().unwrap();
    assert_eq!(d, dijkstra(&graph, 1));
    let snap = service.metrics().snapshot();
    assert_eq!(snap.cancelled, 1);
    assert_eq!(snap.served_full, 1);
}
