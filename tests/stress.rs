//! Randomised cross-validation sweeps and concurrency stress — larger and
//! nastier than the per-crate tests, still fast enough for every CI run.

use mmt_sssp::prelude::*;
use mmt_sssp::thorup::SerialThorup;
use rayon::prelude::*;

/// Five engines, many seeds, every graph family: all must agree exactly.
#[test]
fn five_engines_agree_across_seeds() {
    for seed in [1u64, 7, 42, 1234] {
        for class in [GraphClass::Random, GraphClass::Rmat] {
            for wd in [WeightDist::Uniform, WeightDist::PolyLog] {
                let mut spec = WorkloadSpec::new(class, wd, 10, 10);
                spec.seed = seed;
                let el = spec.generate();
                let g = CsrGraph::from_edge_list(&el);
                let ch = build_parallel(&el);
                let s = (seed % g.n() as u64) as VertexId;
                let want = dijkstra(&g, s);
                assert_eq!(
                    ThorupSolver::new(&g, &ch).solve(s),
                    want,
                    "thorup {}",
                    spec.name()
                );
                assert_eq!(
                    SerialThorup::new(&g, &ch).solve(s),
                    want,
                    "serial {}",
                    spec.name()
                );
                assert_eq!(goldberg_sssp(&g, s), want, "goldberg {}", spec.name());
                assert_eq!(
                    delta_stepping(&g, s, DeltaConfig::auto(&g)),
                    want,
                    "delta {}",
                    spec.name()
                );
                verify_sssp_engine("dijkstra", &g, s, &want).unwrap();
            }
        }
    }
}

/// Many concurrent queries through the instance pool, on an oversubscribed
/// pool, with interleaved full and targeted solves.
#[test]
fn pool_stress_with_mixed_query_kinds() {
    let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, 10, 8);
    spec.seed = 3;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let solver = ThorupSolver::new(&g, &ch);
    let pool = InstancePool::new(&ch);
    let oracle = dijkstra(&g, 0);
    mmt_sssp::platform::with_pool(8, || {
        (0..64u32).into_par_iter().for_each(|i| {
            let inst = pool.acquire();
            if i % 2 == 0 {
                solver.solve_into(&inst, 0);
                assert_eq!(inst.distances(), oracle, "query {i}");
            } else {
                let t = (i * 37) % g.n() as u32;
                let d = solver.solve_target(&inst, 0, t);
                assert_eq!(d, oracle[t as usize], "targeted query {i}");
            }
        });
    });
    assert!(pool.allocated() <= 16);
}

/// Repeated simultaneous batches must be bit-identical run over run.
#[test]
fn simultaneous_batches_are_deterministic() {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 10, 12);
    spec.seed = 77;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let engine = QueryEngine::new(ThorupSolver::new(&g, &ch));
    let sources: Vec<VertexId> = (0..12).map(|i| i * 53 % g.n() as u32).collect();
    let first = engine.solve_batch(&sources, BatchMode::Simultaneous);
    for round in 0..5 {
        let again = mmt_sssp::platform::with_pool(6, || {
            engine.solve_batch(&sources, BatchMode::Simultaneous)
        });
        assert_eq!(first, again, "round {round}");
    }
}

/// The hub-table pipeline at a size where row count × n is nontrivial.
#[test]
fn hub_table_stress() {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 10, 6);
    spec.seed = 9;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let solver = ThorupSolver::new(&g, &ch);
    let hubs: Vec<VertexId> = (0..24).map(|i| i * 41 % g.n() as u32).collect();
    let table = HubDistances::precompute(&solver, &hubs);
    // spot-check 3 rows against the oracle
    for &i in &[0usize, 11, 23] {
        assert_eq!(
            (0..g.n() as u32)
                .map(|v| table.from_hub(i, v))
                .collect::<Vec<_>>(),
            dijkstra(&g, hubs[i])
        );
    }
    // hub-to-hub table symmetry on an undirected graph
    let hh = table.hub_table();
    for (i, row) in hh.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            assert_eq!(v, hh[j][i], "({i},{j})");
        }
    }
}

/// Serialize a hierarchy, reload it, and serve queries from the loaded
/// copy — the persistence workflow end to end.
#[test]
fn persisted_hierarchy_round_trip_serves_queries() {
    let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 9, 9);
    spec.seed = 21;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let mut buf = Vec::new();
    mmt_sssp::ch::io::write_ch(&mut buf, &ch).unwrap();
    let loaded = mmt_sssp::ch::io::read_ch(&buf[..]).unwrap();
    assert_eq!(loaded, ch);
    let s = 17;
    assert_eq!(ThorupSolver::new(&g, &loaded).solve(s), dijkstra(&g, s));
}
