//! Cross-crate integration: generator → CSR → Component Hierarchy → solver
//! pipelines, batch engines, DIMACS round-trips, and the zero-weight
//! preprocessing path, all checked end to end against independent oracles.

use mmt_sssp::prelude::*;

fn grid_of_specs() -> Vec<WorkloadSpec> {
    let mut v = Vec::new();
    for class in [GraphClass::Random, GraphClass::Rmat, GraphClass::Grid] {
        for dist in [WeightDist::Uniform, WeightDist::PolyLog] {
            let mut s = WorkloadSpec::new(class, dist, 9, 7);
            s.seed = 7;
            v.push(s);
        }
    }
    v
}

#[test]
fn full_pipeline_matches_all_baselines() {
    for spec in grid_of_specs() {
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_parallel(&el);
        ch.validate(None).unwrap();
        let solver = ThorupSolver::new(&g, &ch);
        let s = (g.n() / 3) as VertexId;
        let thorup = solver.solve(s);
        assert_eq!(thorup, dijkstra(&g, s), "{} vs dijkstra", spec.name());
        assert_eq!(thorup, goldberg_sssp(&g, s), "{} vs goldberg", spec.name());
        assert_eq!(
            thorup,
            delta_stepping(&g, s, DeltaConfig::auto(&g)),
            "{} vs delta-stepping",
            spec.name()
        );
        verify_sssp_engine("thorup", &g, s, &thorup).unwrap();
    }
}

#[test]
fn one_call_facade_functions() {
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 8);
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let d = mmt_sssp::shortest_paths(&el, 5).unwrap();
    assert_eq!(d, dijkstra(&g, 5));
    let batch = mmt_sssp::shortest_paths_multi(&el, &[1, 2, 3]).unwrap();
    assert_eq!(batch[2], dijkstra(&g, 3));
}

#[test]
fn dimacs_round_trip_preserves_distances() {
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 8, 6);
    let el = spec.generate();
    let mut buf = Vec::new();
    mmt_sssp::graph::dimacs::write_gr(&mut buf, &el, "round trip").unwrap();
    let back = mmt_sssp::graph::dimacs::read_gr(&buf[..]).unwrap();
    let g1 = CsrGraph::from_edge_list(&el);
    let g2 = CsrGraph::from_edge_list(&back);
    assert_eq!(g1.n(), g2.n());
    assert_eq!(g1.m(), g2.m());
    assert_eq!(dijkstra(&g1, 0), dijkstra(&g2, 0));
    assert_eq!(
        mmt_sssp::shortest_paths(&el, 0).unwrap(),
        mmt_sssp::shortest_paths(&back, 0).unwrap()
    );
}

#[test]
fn batch_engine_consistency_across_modes_and_pools() {
    let spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, 9, 9);
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let engine = QueryEngine::new(ThorupSolver::new(&g, &ch));
    let sources: Vec<VertexId> = vec![0, 9, 99, 400, 77, 3];
    let want: Vec<Vec<Dist>> = sources.iter().map(|&s| dijkstra(&g, s)).collect();
    for threads in [1usize, 4] {
        let got = mmt_sssp::platform::with_pool(threads, || {
            engine.solve_batch(&sources, BatchMode::Simultaneous)
        });
        assert_eq!(got, want, "threads={threads}");
    }
    assert_eq!(engine.solve_batch(&sources, BatchMode::Sequential), want);
}

#[test]
fn zero_weight_graphs_via_contraction() {
    use mmt_sssp::ch::ZeroContraction;
    // A graph mixing zero and positive weights.
    let el = EdgeList::from_triples(
        8,
        [
            (0, 1, 0),
            (1, 2, 5),
            (2, 3, 0),
            (3, 4, 7),
            (5, 6, 0),
            (0, 5, 2),
            (6, 7, 3),
        ],
    );
    let z = ZeroContraction::contract(&el);
    let g = CsrGraph::from_edge_list(&z.reduced);
    let ch = build_parallel(&z.reduced);
    let reduced = ThorupSolver::new(&g, &ch).solve(z.map_source(0));
    let full = z.expand_dist(&reduced);
    // Oracle: Dijkstra tolerates zero weights directly.
    let g_full = CsrGraph::from_edge_list(&el);
    assert_eq!(full, dijkstra(&g_full, 0));
}

#[test]
fn induced_subgraph_queries_match_global_structure() {
    use mmt_sssp::graph::subgraph::induced_by_vertices;
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 5);
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    // Extract the ball of radius 2 hops around vertex 0 and solve inside it.
    let mut selected: Vec<VertexId> = vec![0];
    for (v, _) in g.edges_from(0) {
        selected.push(v);
        for (u, _) in g.edges_from(v) {
            selected.push(u);
        }
    }
    let sub = induced_by_vertices(&g, &selected);
    let sub_el = sub.graph.to_edge_list();
    let d = mmt_sssp::shortest_paths(&sub_el, 0).unwrap();
    assert_eq!(d, dijkstra(&sub.graph, 0));
    // Distances inside the subgraph can only be >= the global ones.
    let global = dijkstra(&g, 0);
    for (new_id, &orig) in sub.original_id.iter().enumerate() {
        assert!(d[new_id] >= global[orig as usize]);
    }
}

#[test]
fn faithful_and_collapsed_hierarchies_answer_identically() {
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 8, 10);
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let collapsed = build_serial(&el, ChMode::Collapsed);
    let faithful = build_serial(&el, ChMode::Faithful);
    let a = ThorupSolver::new(&g, &collapsed).solve(2);
    let b = ThorupSolver::new(&g, &faithful).solve(2);
    assert_eq!(a, b);
}
