//! Metamorphic tests: transformations of the input with a known effect on
//! the output, applied to every engine. These catch bug classes that
//! oracle comparison can miss (e.g. systematic off-by-one in bucket
//! shifts, which scaling by powers of two would expose).

use mmt_sssp::prelude::*;
use mmt_sssp::thorup::SerialThorup;
use proptest::prelude::*;

fn arb_graph_and_source() -> impl Strategy<Value = (EdgeList, u32)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..200).prop_map(|(u, v, w)| Edge::new(u, v, w));
        (
            proptest::collection::vec(edge, 0..120).prop_map(move |edges| EdgeList { n, edges }),
            0..n as u32,
        )
    })
}

fn thorup(el: &EdgeList, s: u32) -> Vec<Dist> {
    let g = CsrGraph::from_edge_list(el);
    let ch = build_parallel(el);
    ThorupSolver::new(&g, &ch).solve(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scaling every weight by k scales every finite distance by k.
    /// Powers of two shift the whole Component Hierarchy by log2(k) levels,
    /// so this exercises the bucket arithmetic end to end.
    #[test]
    fn weight_scaling_scales_distances((el, s) in arb_graph_and_source(), k in 1u32..9) {
        let base = thorup(&el, s);
        let scaled_el = EdgeList {
            n: el.n,
            edges: el.edges.iter().map(|e| Edge::new(e.u, e.v, e.w * k)).collect(),
        };
        let scaled = thorup(&scaled_el, s);
        for (a, b) in base.iter().zip(&scaled) {
            if *a == INF {
                prop_assert_eq!(*b, INF);
            } else {
                prop_assert_eq!(*b, *a * k as u64);
            }
        }
    }

    /// Relabelling vertices by a permutation permutes the distances.
    #[test]
    fn vertex_permutation_permutes_distances((el, s) in arb_graph_and_source(), seed in 0u64..1000) {
        // Fisher-Yates from a deterministic LCG keyed by `seed`.
        let n = el.n;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..n).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let permuted = EdgeList {
            n,
            edges: el.edges.iter()
                .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize], e.w))
                .collect(),
        };
        let base = thorup(&el, s);
        let moved = thorup(&permuted, perm[s as usize]);
        for v in 0..n {
            prop_assert_eq!(base[v], moved[perm[v] as usize], "vertex {}", v);
        }
    }

    /// Adding an edge never increases any distance, and lowers at most by
    /// the detour through it.
    #[test]
    fn edge_insertion_is_monotone((el, s) in arb_graph_and_source(), u in 0u32..40, v in 0u32..40, w in 1u32..100) {
        let (u, v) = (u % el.n as u32, v % el.n as u32);
        let base = thorup(&el, s);
        let mut bigger = el.clone();
        bigger.push(u, v, w);
        let after = thorup(&bigger, s);
        for i in 0..el.n {
            prop_assert!(after[i] <= base[i], "distance increased at {}", i);
        }
        // The only new paths go through (u, v): the improvement at v is
        // bounded by d(u) + w (and symmetrically).
        if base[u as usize] != INF {
            prop_assert!(after[v as usize] <= base[u as usize] + w as u64);
        }
    }

    /// The serial engine and all baselines agree with the parallel engine
    /// on the same arbitrary input (belt over the per-crate suspenders).
    #[test]
    fn every_engine_agrees((el, s) in arb_graph_and_source()) {
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_parallel(&el);
        let want = dijkstra(&g, s);
        prop_assert_eq!(&ThorupSolver::new(&g, &ch).solve(s), &want);
        prop_assert_eq!(&SerialThorup::new(&g, &ch).solve(s), &want);
        prop_assert_eq!(&goldberg_sssp(&g, s), &want);
        prop_assert_eq!(&bellman_ford(&g, s), &want);
        prop_assert_eq!(&delta_stepping(&g, s, DeltaConfig::auto(&g)), &want);
    }
}
