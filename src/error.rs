//! The workspace-wide error type of the facade crate.
//!
//! Lower layers report precise errors ([`InputError`] for malformed
//! queries, [`ServiceError`] for serving-layer outcomes); callers of the
//! facade's one-call helpers and of the serving layer can unify on
//! [`MmtError`] and use `?` across both.

use mmt_thorup::{InputError, ServiceError};
use std::fmt;

/// Any error the facade's public surface can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmtError {
    /// A query or construction was malformed (out-of-range vertex,
    /// hierarchy built for a different graph).
    Input(InputError),
    /// The query service rejected or abandoned a request (overload,
    /// deadline, cancellation, shutdown).
    Service(ServiceError),
}

impl fmt::Display for MmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Input(e) => write!(f, "{e}"),
            Self::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MmtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Input(e) => Some(e),
            Self::Service(e) => Some(e),
        }
    }
}

impl From<InputError> for MmtError {
    fn from(e: InputError) -> Self {
        Self::Input(e)
    }
}

impl From<ServiceError> for MmtError {
    fn from(e: ServiceError) -> Self {
        // A service rejection that is really an input problem surfaces as
        // Input, so matching on MmtError::Input is reliable either way.
        match e {
            ServiceError::Input(inner) => Self::Input(inner),
            other => Self::Service(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_input_errors_collapse_to_input() {
        let inner = InputError::SourceOutOfRange { source: 7, n: 3 };
        let via_service: MmtError = ServiceError::Input(inner).into();
        let direct: MmtError = inner.into();
        assert_eq!(via_service, direct);
        assert_eq!(via_service, MmtError::Input(inner));
    }

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: MmtError = ServiceError::DeadlineExceeded.into();
        assert_eq!(e.to_string(), "deadline exceeded");
        assert!(e.source().is_some());
    }
}
