//! # mmt-sssp — multithreaded Thorup shortest paths
//!
//! A from-scratch Rust reproduction of *Advanced Shortest Paths Algorithms
//! on a Massively-Multithreaded Architecture* (Crobak, Berry, Madduri,
//! Bader — IPDPS 2007): Thorup's undirected single-source shortest path
//! algorithm over a shared Component Hierarchy, together with every
//! substrate the paper's study relies on — synthetic graph generators,
//! parallel connected components, parallel Δ-stepping, and a
//! multilevel-bucket reference solver.
//!
//! This facade crate re-exports the workspace crates under one roof and
//! offers a [`prelude`] plus a couple of one-call conveniences.
//!
//! ```
//! use mmt_sssp::prelude::*;
//!
//! // Build the paper's Figure 1 graph, its Component Hierarchy, and query it.
//! let edges = shapes::figure_one();
//! let graph = CsrGraph::from_edge_list(&edges);
//! let ch = build_parallel(&edges);
//! let solver = ThorupSolver::new(&graph, &ch);
//! assert_eq!(solver.solve(0), mmt_sssp::baselines::dijkstra(&graph, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mmt_analytics as analytics;
pub use mmt_baselines as baselines;
pub use mmt_cc as cc;
pub use mmt_ch as ch;
pub use mmt_graph as graph;
pub use mmt_platform as platform;
pub use mmt_thorup as thorup;
pub use mmt_verify as verify;

pub mod error;

pub use error::MmtError;

/// The names most programs need.
pub mod prelude {
    pub use crate::error::MmtError;
    pub use mmt_baselines::{
        bellman_ford, bfs, bidirectional_dijkstra, delta_stepping, dijkstra, goldberg_sssp,
        verify_sssp, verify_sssp_engine, DeltaConfig, Divergence, DivergenceKind,
    };
    pub use mmt_ch::{
        build_parallel, build_serial, clusters_at_threshold, ChMode, ChStats, ComponentHierarchy,
    };
    pub use mmt_graph::gen::{shapes, GraphClass, WeightDist, WorkloadSpec};
    pub use mmt_graph::paths::build_tree;
    pub use mmt_graph::types::{Dist, Edge, EdgeList, VertexId, Weight, INF};
    pub use mmt_graph::CsrGraph;
    pub use mmt_platform::CancelToken;
    pub use mmt_thorup::{
        BatchMode, BatchRequest, GraphId, GraphMetricsSnapshot, GraphRegistry, HubDistances,
        InputError, InstancePool, MetricsSnapshot, QueryEngine, QueryHandle, QueryId, QueryRequest,
        QueryService, QueryServiceBuilder, SerialThorup, ServiceError, ServiceMetrics,
        ShutdownMode, TargetHandle, ThorupConfig, ThorupInstance, ThorupSolver, ToVisitStrategy,
    };
}

use mmt_graph::types::{Dist, EdgeList, VertexId};
use mmt_thorup::InputError;

fn check_sources(n: usize, sources: &[VertexId]) -> Result<(), MmtError> {
    for &s in sources {
        if s as usize >= n {
            return Err(InputError::SourceOutOfRange { source: s, n }.into());
        }
    }
    Ok(())
}

/// One-call SSSP: builds the Component Hierarchy and runs one Thorup query.
///
/// Fails with [`MmtError::Input`] when `source` is not a vertex of the
/// graph. For repeated queries build the hierarchy once and use
/// [`ThorupSolver`](mmt_thorup::ThorupSolver) /
/// [`QueryEngine`](mmt_thorup::QueryEngine) directly — amortising the CH is
/// the paper's whole point.
///
/// ```
/// use mmt_sssp::prelude::*;
/// let el = shapes::figure_one();
/// let dist = mmt_sssp::shortest_paths(&el, 0).unwrap();
/// assert_eq!(dist, vec![0, 1, 1, 9, 10, 10]);
/// assert!(mmt_sssp::shortest_paths(&el, 99).is_err());
/// ```
pub fn shortest_paths(edges: &EdgeList, source: VertexId) -> Result<Vec<Dist>, MmtError> {
    let graph = mmt_graph::CsrGraph::from_edge_list(edges);
    let ch = mmt_ch::build_parallel(edges);
    let solver = mmt_thorup::ThorupSolver::try_new(&graph, &ch)?;
    Ok(solver.try_solve(source)?)
}

/// One-call batched SSSP from many sources sharing one hierarchy.
///
/// Fails with [`MmtError::Input`] when any source is out of range.
pub fn shortest_paths_multi(
    edges: &EdgeList,
    sources: &[VertexId],
) -> Result<Vec<Vec<Dist>>, MmtError> {
    let graph = mmt_graph::CsrGraph::from_edge_list(edges);
    let ch = mmt_ch::build_parallel(edges);
    check_sources(graph.n(), sources)?;
    let solver = mmt_thorup::ThorupSolver::try_new(&graph, &ch)?;
    Ok(mmt_thorup::QueryEngine::new(solver)
        .solve_batch(sources, mmt_thorup::BatchMode::Simultaneous))
}

/// One-call SSSP returning distances *and* a shortest-path tree (tight-edge
/// reconstruction over the Thorup distances).
///
/// Fails with [`MmtError::Input`] when `source` is out of range.
pub fn shortest_paths_with_tree(
    edges: &EdgeList,
    source: VertexId,
) -> Result<(Vec<Dist>, mmt_graph::paths::ShortestPathTree), MmtError> {
    let graph = mmt_graph::CsrGraph::from_edge_list(edges);
    let ch = mmt_ch::build_parallel(edges);
    let solver = mmt_thorup::ThorupSolver::try_new(&graph, &ch)?;
    let dist = solver.try_solve(source)?;
    let tree = mmt_graph::paths::build_tree(&graph, source, &dist);
    Ok((dist, tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::shapes;

    #[test]
    fn one_call_helpers() {
        let el = shapes::figure_one();
        assert_eq!(shortest_paths(&el, 0).unwrap(), vec![0, 1, 1, 9, 10, 10]);
        let batch = shortest_paths_multi(&el, &[0, 3]).unwrap();
        assert_eq!(batch[0][5], 10);
        assert_eq!(batch[1][3], 0);
    }

    #[test]
    fn one_call_helpers_reject_bad_sources() {
        let el = shapes::figure_one();
        let err = shortest_paths(&el, 42).unwrap_err();
        assert_eq!(
            err,
            MmtError::Input(InputError::SourceOutOfRange { source: 42, n: 6 })
        );
        assert!(shortest_paths_multi(&el, &[0, 42]).is_err());
        assert!(shortest_paths_with_tree(&el, 42).is_err());
    }

    #[test]
    fn one_call_tree() {
        let el = shapes::figure_one();
        let (dist, tree) = shortest_paths_with_tree(&el, 0).unwrap();
        assert_eq!(dist[5], 10);
        let path = tree.path_to(5).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&5));
        let g = mmt_graph::CsrGraph::from_edge_list(&el);
        tree.validate(&g, &dist).unwrap();
    }
}
