//! The Component Hierarchy as a clustering dendrogram.
//!
//! Thorup's CH is, by construction, single-linkage hierarchical clustering
//! at power-of-two scales — built once, in parallel, and then answering
//! any number of threshold queries without touching the graph again. This
//! example plants three communities in a dissimilarity graph (cheap edges
//! inside communities, expensive edges across) and recovers them straight
//! from the hierarchy.
//!
//! ```text
//! cargo run --release --example clustering
//! ```

use mmt_sssp::ch::{clusters_at_threshold, merge_threshold};
use mmt_sssp::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Three communities of `k` vertices: intra-community edges cost 1–3,
/// inter-community bridges cost 50–80.
fn planted_communities(k: usize, rng: &mut SmallRng) -> EdgeList {
    let n = 3 * k;
    let mut el = EdgeList::new(n);
    for c in 0..3u32 {
        let base = c * k as u32;
        // a ring plus chords keeps each community connected and chunky
        for i in 0..k as u32 {
            el.push(base + i, base + (i + 1) % k as u32, rng.gen_range(1..=3));
        }
        for _ in 0..k {
            let a = base + rng.gen_range(0..k as u32);
            let b = base + rng.gen_range(0..k as u32);
            el.push(a, b, rng.gen_range(1..=3));
        }
    }
    // Bridges: expensive (64–127), so communities stay separate below 64
    // and merge by 128. One bridge per community pair guarantees global
    // connectivity, plus a few extra random ones.
    for (ca, cb) in [(0u32, 1u32), (1, 2), (0, 2), (0, 1), (1, 2), (0, 2)] {
        el.push(
            ca * k as u32 + rng.gen_range(0..k as u32),
            cb * k as u32 + rng.gen_range(0..k as u32),
            rng.gen_range(64..=127),
        );
    }
    el
}

fn main() {
    let k = 200;
    let mut rng = SmallRng::seed_from_u64(2026);
    let edges = planted_communities(k, &mut rng);
    let ch = build_parallel(&edges);
    println!(
        "similarity graph: n={} m={}; hierarchy: {}",
        edges.n,
        edges.m(),
        ChStats::of(&ch)
    );

    for t in [2u32, 8, 64, 128] {
        let c = clusters_at_threshold(&ch, t);
        let sizes = c.sizes();
        println!(
            "clusters with dissimilarity < {t:>3}: {:>4} clusters, largest {:?}",
            c.count,
            &sizes[..sizes.len().min(5)]
        );
    }

    // The planted structure: three clusters at threshold 64.
    let c = clusters_at_threshold(&ch, 64);
    let truth_ok = (0..3 * k as u32).all(|v| c.same(v, (v / k as u32) * k as u32));
    println!(
        "\nthreshold 64 recovers the planted communities: {}",
        if truth_ok && c.count == 3 {
            "yes"
        } else {
            "NO"
        }
    );
    assert!(truth_ok && c.count == 3);

    // Dendrogram queries: when do two vertices merge?
    let (a, inside, outside) = (0u32, 5u32, k as u32 + 5);
    println!(
        "merge scale of {a} and {inside} (same community):      < {}",
        merge_threshold(&ch, a, inside).unwrap()
    );
    println!(
        "merge scale of {a} and {outside} (different community): < {}",
        merge_threshold(&ch, a, outside).unwrap()
    );
}
