//! A resident shortest-path query service: the deployment shape the
//! paper's shared-hierarchy economics point at. One process builds the
//! Component Hierarchy, then worker threads answer a stream of full and
//! point-to-point queries from concurrent clients — with bounded
//! admission, per-request deadlines, and a metrics snapshot at the end.
//!
//! ```text
//! cargo run --release --example query_service [log_n] [workers]
//! ```

use mmt_platform::Stopwatch;
use mmt_sssp::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(mmt_sssp::platform::available_threads);

    let spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, log_n, 8);
    let edges = spec.generate();
    let graph = Arc::new(CsrGraph::from_edge_list(&edges));
    let sw = Stopwatch::start();
    let ch = Arc::new(build_parallel(&edges));
    println!(
        "{}: n={} m={}; hierarchy built once in {:.3}s",
        spec.name(),
        graph.n(),
        graph.m(),
        sw.seconds()
    );

    let mut registry = GraphRegistry::new();
    let graph_id = registry
        .register(spec.name(), &graph, ch)
        .expect("graph and hierarchy agree");
    let service = Arc::new(
        QueryService::builder()
            .workers(workers)
            .queue_capacity(256)
            .default_deadline(Duration::from_secs(30))
            .build_registry(registry)
            .expect("registry graphs are servable"),
    );
    println!(
        "service up: graph {graph_id} resident ({} bytes), {} workers/shard, queue capacity {}\n",
        service
            .registry()
            .graph_resident_bytes(graph_id)
            .expect("registered"),
        service.workers(),
        service.queue_capacity()
    );

    // Simulate a burst of concurrent clients: 4 clients, mixed query types.
    let clients = 4;
    let per_client = 25;
    let sw = Stopwatch::start();
    std::thread::scope(|s| {
        for c in 0..clients {
            let service = Arc::clone(&service);
            let graph = Arc::clone(&graph);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(c as u64);
                for q in 0..per_client {
                    let src = rng.gen_range(0..graph.n()) as VertexId;
                    if q % 3 == 0 {
                        let dst = rng.gen_range(0..graph.n()) as VertexId;
                        let d = service
                            .submit_p2p(QueryRequest::on(graph_id, src).target(dst))
                            .and_then(|h| h.wait())
                            .expect("in-deadline targeted query");
                        if c == 0 && q < 6 {
                            println!("client {c}: dist({src} -> {dst}) = {}", fmt_dist(d));
                        }
                    } else {
                        let dist = service
                            .submit(QueryRequest::on(graph_id, src))
                            .and_then(|h| h.wait())
                            .expect("in-deadline full query");
                        let reached = dist.iter().filter(|&&d| d != INF).count();
                        if c == 0 && q < 6 {
                            println!("client {c}: sssp({src}) reached {reached} vertices");
                        }
                    }
                }
            });
        }
    });
    let secs = sw.seconds();
    let snap = service.metrics().snapshot();
    println!(
        "\nserved {} queries ({} full, {} targeted) in {:.3}s = {:.0} queries/s",
        snap.served_total(),
        snap.served_full,
        snap.served_target,
        secs,
        snap.served_total() as f64 / secs
    );
    println!("metrics: {}", snap.to_json());
}

fn fmt_dist(d: Dist) -> String {
    if d == INF {
        "unreachable".into()
    } else {
        d.to_string()
    }
}
