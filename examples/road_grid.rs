//! Road networks — the paper's future-work frontier.
//!
//! The conclusion notes the implementation "exhibits trapping behavior that
//! severely limits performance on road networks": on high-diameter
//! structured graphs the Component Hierarchy traversal descends into long
//! chains of tiny components, so the toVisit sets stay near size one and
//! the parallel machinery has nothing to chew on. This example quantifies
//! that on a grid (the standard road-network stand-in): compare the
//! bucket-expansion counts and wall time of Thorup vs Δ-stepping on a grid
//! against an unstructured Random graph of the same size.
//!
//! ```text
//! cargo run --release --example road_grid [log_n]
//! ```

use mmt_platform::Stopwatch;
use mmt_sssp::prelude::*;
use mmt_sssp::thorup::SerialThorup;

fn run(label: &str, spec: WorkloadSpec) {
    let edges = spec.generate();
    let graph = CsrGraph::from_edge_list(&edges);
    let ch = build_parallel(&edges);
    let stats = ChStats::of(&ch);
    let solver = ThorupSolver::new(&graph, &ch);

    let sw = Stopwatch::start();
    let dist = solver.solve(0);
    let thorup_secs = sw.seconds();
    verify_sssp(&graph, 0, &dist).expect("certificate check");

    let sw = Stopwatch::start();
    let baseline = delta_stepping(&graph, 0, DeltaConfig::auto(&graph));
    let delta_secs = sw.seconds();
    assert_eq!(dist, baseline);

    // The diagnosis itself: a traced serial run.
    let (_, trace) = SerialThorup::new(&graph, &ch).solve_traced(0);
    println!(
        "\n== {label}: {} (n={} m={})",
        spec.name(),
        graph.n(),
        graph.m()
    );
    println!(
        "   CH: depth {} avg_children {:.2}",
        stats.depth, stats.avg_children
    );
    println!("   Thorup {thorup_secs:.4}s vs Δ-stepping {delta_secs:.4}s");
    println!(
        "   trapping indicators: {:.2} bucket expansions/vertex; {:.1}% of toVisit sets ≤ 1",
        trace.expansions_per_vertex(),
        100.0 * trace.tiny_tovisit_fraction()
    );
}

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);
    // Same vertex budget, same weight distribution; only structure differs.
    run(
        "unstructured (paper's home turf)",
        WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, 8),
    );
    run(
        "structured road-like grid (future work)",
        WorkloadSpec::new(GraphClass::Grid, WeightDist::Uniform, log_n, 8),
    );
}
