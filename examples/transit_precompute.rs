//! The paper's closing conjecture, measured: shared-CH batches can
//! accelerate the *precomputation* behind transit-node-style s–t routing.
//!
//! On a grid "road network" we pick a lattice of transit hubs, precompute
//! all hub SSSP trees two ways — simultaneously over one shared Component
//! Hierarchy vs sequentially (the serial-precomputation world the paper
//! quotes at "1 to 11 hours") — and then measure how good the resulting
//! via-hub distance bound is against exact bidirectional Dijkstra.
//!
//! ```text
//! cargo run --release --example transit_precompute [side]
//! ```

use mmt_platform::Stopwatch;
use mmt_sssp::baselines::bidirectional_dijkstra;
use mmt_sssp::prelude::*;
use mmt_sssp::thorup::HubDistances;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    // A side x side grid with road-like weights.
    let mut rng = SmallRng::seed_from_u64(7);
    let sampler = mmt_sssp::graph::gen::weights::WeightSampler::new(WeightDist::Uniform, 64);
    let edges = mmt_sssp::graph::gen::grid::grid_graph(side, side, &sampler, &mut rng);
    let graph = CsrGraph::from_edge_list(&edges);
    println!("road grid {side}x{side}: n={} m={}", graph.n(), graph.m());

    let sw = Stopwatch::start();
    let ch = build_parallel(&edges);
    println!("component hierarchy built in {:.3}s", sw.seconds());

    // Transit hubs: every 16th lattice crossing.
    let step = 16usize;
    let hubs: Vec<VertexId> = (0..side)
        .step_by(step)
        .flat_map(|r| {
            (0..side)
                .step_by(step)
                .map(move |c| (r * side + c) as VertexId)
        })
        .collect();
    println!("transit hubs: {} (every {step}th crossing)", hubs.len());

    let solver = ThorupSolver::new(&graph, &ch);
    let sw = Stopwatch::start();
    let table = HubDistances::precompute(&solver, &hubs);
    let simul = sw.seconds();
    let sw = Stopwatch::start();
    let seq = HubDistances::precompute_sequential(&solver, &hubs);
    let sequential = sw.seconds();
    assert_eq!(table, seq);
    println!(
        "precomputation: simultaneous shared-CH {simul:.3}s vs sequential {sequential:.3}s ({:.2}x)",
        sequential / simul
    );
    println!(
        "table size: {}",
        mmt_platform::mem::fmt_bytes(table.heap_bytes())
    );

    // Query study: via-hub bound vs exact bidirectional Dijkstra.
    let queries = 200;
    let mut exact_hits = 0usize;
    let mut stretch_sum = 0.0f64;
    let mut worst = 1.0f64;
    let sw = Stopwatch::start();
    for _ in 0..queries {
        let s = rng.gen_range(0..graph.n()) as VertexId;
        let t = rng.gen_range(0..graph.n()) as VertexId;
        let exact = bidirectional_dijkstra(&graph, s, t);
        let bound = table.via_hub_bound(s, t);
        assert!(bound >= exact, "via-hub must upper-bound");
        if exact > 0 {
            let stretch = bound as f64 / exact as f64;
            stretch_sum += stretch;
            worst = worst.max(stretch);
            if bound == exact {
                exact_hits += 1;
            }
        } else {
            exact_hits += 1;
        }
    }
    println!("\n{queries} random s-t queries in {:.3}s:", sw.seconds());
    println!(
        "  via-hub bound exact for {exact_hits}/{queries}; mean stretch {:.3}, worst {:.3}",
        stretch_sum / queries as f64,
        worst
    );
    println!(
        "  (a production TNR adds per-vertex access nodes + a locality filter; \
         this demonstrates the shared-CH batched precomputation the paper conjectures)"
    );
}
