//! Social-network analytics: closeness centrality of seed users on an
//! R-MAT scale-free graph — the unstructured-network workload the paper's
//! introduction motivates ("social networks and economic transaction
//! networks").
//!
//! The kernel is a batch of single-source shortest path computations, which
//! is exactly the regime where a shared Component Hierarchy pays off
//! (paper §5.5 / Figure 5): build the CH once, run the queries
//! simultaneously, and compare against running Δ-stepping once per seed.
//!
//! ```text
//! cargo run --release --example social_network [log_n]
//! ```

use mmt_platform::Stopwatch;
use mmt_sssp::analytics::{closeness_centrality, estimate_diameter, ComponentSummary};
use mmt_sssp::prelude::*;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);
    let spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::Uniform, log_n, 6);
    let edges = spec.generate();
    let graph = CsrGraph::from_edge_list(&edges);
    println!("network {}: n={} m={}", spec.name(), graph.n(), graph.m());
    println!("structure: {}", ComponentSummary::of(&edges));

    // Preprocessing (shared by every query).
    let sw = Stopwatch::start();
    let ch = build_parallel(&edges);
    println!(
        "component hierarchy built in {:.3}s — {}",
        sw.seconds(),
        ChStats::of(&ch)
    );

    // Pick the highest-degree vertices as "seed users".
    let mut by_degree: Vec<VertexId> = (0..graph.n() as VertexId).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let seeds: Vec<VertexId> = by_degree[..16].to_vec();

    // Batch of Thorup queries over the shared CH.
    let solver = ThorupSolver::new(&graph, &ch);
    let engine = QueryEngine::new(solver);
    let sw = Stopwatch::start();
    let batch = engine.solve_batch(&seeds, BatchMode::Simultaneous);
    let thorup_secs = sw.seconds();

    // The baseline: Δ-stepping must run the seeds one after another.
    let cfg = DeltaConfig::auto(&graph);
    let sw = Stopwatch::start();
    let baseline: Vec<Vec<Dist>> = seeds
        .iter()
        .map(|&s| delta_stepping(&graph, s, cfg))
        .collect();
    let delta_secs = sw.seconds();
    assert_eq!(batch, baseline, "both engines must agree");

    println!(
        "\n{} queries: simultaneous Thorup {:.3}s vs sequential Δ-stepping {:.3}s ({:.2}x)",
        seeds.len(),
        thorup_secs,
        delta_secs,
        delta_secs / thorup_secs
    );

    drop(batch);
    // Closeness centrality via the analytics crate (one more shared-CH
    // batch under the hood).
    println!("\nseed users by closeness centrality:");
    let mut rows = closeness_centrality(&solver, &seeds);
    rows.sort_by(|a, b| b.closeness.total_cmp(&a.closeness));
    for score in rows.iter().take(8) {
        println!(
            "  user {:>8}  degree {:>5}  reaches {:>7}  closeness {:.6}  harmonic {:.1}",
            score.vertex,
            graph.degree(score.vertex),
            score.reached,
            score.closeness,
            score.harmonic
        );
    }
    println!(
        "\nweighted diameter (double-sweep over 3 seeds): >= {}",
        estimate_diameter(&solver, &seeds[..3])
    );
}
