//! Economic transaction network: cheapest-transfer-route queries on a
//! Random graph with poly-logarithmic weights (costs clustered on powers of
//! two — fee tiers), the second unstructured workload from the paper's
//! introduction.
//!
//! Demonstrates the memory economics of the shared Component Hierarchy
//! (paper §5.2): a per-query Thorup instance is far smaller than the copy
//! of the graph a per-query Δ-stepping process would need.
//!
//! ```text
//! cargo run --release --example transaction_network [log_n]
//! ```

use mmt_platform::mem::fmt_bytes;
use mmt_platform::EventCounters;
use mmt_sssp::prelude::*;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(14);
    let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, log_n, log_n);
    let edges = spec.generate();
    let graph = CsrGraph::from_edge_list(&edges);
    let ch = build_parallel(&edges);
    let stats = ChStats::of(&ch);
    println!("network {}: n={} m={}", spec.name(), graph.n(), graph.m());
    println!("hierarchy: {stats}");

    // Memory economics: graph copy vs per-query instance.
    let per_query = stats.instance_bytes;
    let graph_copy = graph.heap_bytes();
    println!(
        "\nper-query state {} vs per-process graph copy {} — {:.1}x smaller",
        fmt_bytes(per_query),
        fmt_bytes(graph_copy),
        graph_copy as f64 / per_query as f64
    );

    // Run an instrumented query from the main clearing house (vertex 0).
    let counters = EventCounters::new();
    let solver = ThorupSolver::new(&graph, &ch).with_counters(&counters);
    let dist = solver.solve(0);
    verify_sssp(&graph, 0, &dist).expect("certificate check");
    println!("\ninstrumented query from vertex 0: {}", counters.summary());

    // Cheapest routes to a few counterparties, with fee-tier breakdown.
    println!("\ncheapest transfer costs from vertex 0:");
    for target in [1u32, 17, 4242 % graph.n() as u32] {
        let d = dist[target as usize];
        println!("  -> {target:>6}: cost {d}");
    }
    let reachable = dist.iter().filter(|&&d| d != INF).count();
    let total: u64 = dist.iter().filter(|&&d| d != INF).sum();
    println!(
        "\nreachable {reachable}/{} accounts, mean cost {:.1}",
        graph.n(),
        total as f64 / reachable as f64
    );

    // Cross-check against the reference solver on a second source.
    let s2 = (graph.n() / 2) as VertexId;
    assert_eq!(
        ThorupSolver::new(&graph, &ch).solve(s2),
        goldberg_sssp(&graph, s2),
        "Thorup and the multilevel-bucket reference must agree"
    );
    println!("cross-check vs multilevel-bucket reference solver: OK");
}
