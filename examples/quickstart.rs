//! Quickstart: build a graph, build its Component Hierarchy once, answer
//! shortest-path queries with Thorup's algorithm, and cross-check against
//! Dijkstra.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mmt_sssp::baselines::dijkstra::{dijkstra_with_parents, extract_path};
use mmt_sssp::prelude::*;

fn main() {
    // The paper's Figure 1 graph: two tight communities (weight-1
    // triangles) joined by one expensive edge (weight 8).
    let edges = shapes::figure_one();
    let graph = CsrGraph::from_edge_list(&edges);

    // Preprocessing: the Component Hierarchy. Built once, shared by every
    // query afterwards.
    let ch = build_parallel(&edges);
    println!(
        "graph: n={} m={} C={}",
        graph.n(),
        graph.m(),
        graph.max_weight()
    );
    println!("hierarchy: {}", ChStats::of(&ch));

    // A Thorup query.
    let solver = ThorupSolver::new(&graph, &ch);
    let source: VertexId = 0;
    let dist = solver.solve(source);
    println!("\ndistances from {source}: {dist:?}");

    // Cross-check with the Dijkstra oracle and print an actual path.
    let (oracle, parents) = dijkstra_with_parents(&graph, source);
    assert_eq!(dist, oracle, "Thorup must agree with Dijkstra");
    verify_sssp(&graph, source, &dist).expect("certificate check");
    let target = 5;
    let path = extract_path(&parents, &oracle, source, target).expect("reachable");
    println!(
        "a shortest path {source} -> {target}: {path:?} (length {})",
        dist[target as usize]
    );

    // The batch API: many sources, one shared hierarchy.
    let engine = QueryEngine::new(solver);
    let all: Vec<VertexId> = (0..graph.n() as VertexId).collect();
    let batch = engine.solve_batch(&all, BatchMode::Simultaneous);
    println!(
        "\nall-pairs via {} simultaneous single-source queries:",
        all.len()
    );
    for (s, row) in batch.iter().enumerate() {
        println!("  from {s}: {row:?}");
    }
}
