//! Minimal stand-in for `rayon`: data parallelism by sharding.
//!
//! Parallel iterators here evaluate by splitting their source into one
//! contiguous shard per available thread and running the adapter chain
//! serially within each shard on `std::thread::scope` threads. This keeps
//! rayon's semantics for everything this workspace relies on — order
//! preservation in `collect`, arbitrary order in `for_each`, pool-bounded
//! concurrency via [`ThreadPool::install`] — without a work-stealing
//! runtime. Nested parallel calls divide the thread budget instead of
//! sharing a deque, so total live threads never exceed the installed pool
//! size.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Thread budget ("pool") management
// ---------------------------------------------------------------------------

thread_local! {
    /// 0 means "unset": fall back to hardware parallelism.
    static BUDGET: Cell<usize> = const { Cell::new(0) };
    /// The installed pool's start handler, if any (see
    /// [`ThreadPoolBuilder::start_handler`]).
    static HANDLER: RefCell<Option<StartHandler>> = const { RefCell::new(None) };
}

/// Callback invoked on each worker thread a parallel call spawns, with the
/// worker's shard index. Real rayon runs this once per persistent pool
/// thread; the shim has no persistent threads, so it runs once per scoped
/// thread per parallel call instead — handlers must therefore be idempotent
/// (thread pinning, the workspace's sole use, is).
type StartHandler = Arc<dyn Fn(usize) + Send + Sync>;

fn current_handler() -> Option<StartHandler> {
    HANDLER.with(|h| h.borrow().clone())
}

fn with_handler<R>(handler: Option<StartHandler>, f: impl FnOnce() -> R) -> R {
    let old = HANDLER.with(|h| h.replace(handler));
    let out = f();
    HANDLER.with(|h| h.replace(old));
    out
}

/// Number of threads parallel work may use in the current context.
pub fn current_num_threads() -> usize {
    let b = BUDGET.get();
    if b == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        b
    }
}

fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    let old = BUDGET.replace(budget);
    let out = f();
    BUDGET.set(old);
    out
}

/// Runs `f(0..parts)` concurrently (one scoped thread per extra part) and
/// returns the results in part order. Each part runs with a proportionally
/// reduced thread budget so nested parallelism stays bounded.
fn run_parts<R: Send>(parts: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads();
    if parts <= 1 || threads <= 1 {
        return (0..parts).map(&f).collect();
    }
    let child_budget = (threads / parts).max(1);
    let handler = current_handler();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..parts)
            .map(|part| {
                let f = &f;
                let handler = handler.clone();
                scope.spawn(move || {
                    if let Some(h) = &handler {
                        h(part);
                    }
                    with_handler(handler.clone(), || with_budget(child_budget, || f(part)))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(parts);
        // Part 0 runs on the calling thread, which the handler must NOT
        // touch: pinning the caller would outlive the parallel call.
        out.push(with_budget(child_budget, || f(0)));
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Partition `[0, len)` into `parts` balanced contiguous ranges.
fn part_bounds(len: usize, part: usize, parts: usize) -> (usize, usize) {
    (len * part / parts, len * (part + 1) / parts)
}

fn parts_for(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// A logical pool: a thread budget that [`ThreadPool::install`] applies to
/// all parallel work in a closure, plus an optional worker start handler.
pub struct ThreadPool {
    threads: usize,
    handler: Option<StartHandler>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("start_handler", &self.handler.is_some())
            .finish()
    }
}

impl ThreadPool {
    /// Runs `f` with this pool's thread budget (and start handler, if any)
    /// in effect. Installing a pool replaces any outer pool context,
    /// including its handler — rayon's semantics.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_handler(self.handler.clone(), || with_budget(self.threads, f))
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder for [`ThreadPool`], mirroring rayon's.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    start_handler: Option<StartHandler>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count (0 means "hardware default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Accepted for API compatibility; shard threads are unnamed.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    /// Registers a callback run on each worker the pool's parallel calls
    /// spawn, with the worker's index. See [`StartHandler`] for how the
    /// shim's per-call threads differ from rayon's persistent workers.
    pub fn start_handler<H: Fn(usize) + Send + Sync + 'static>(mut self, handler: H) -> Self {
        self.start_handler = Some(Arc::new(handler));
        self
    }

    /// Builds the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool {
            threads,
            handler: self.start_handler,
        })
    }
}

/// Pool construction error (never produced by the shim).
pub struct ThreadPoolBuildError;

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

// ---------------------------------------------------------------------------
// The parallel iterator trait
// ---------------------------------------------------------------------------

/// A shard-evaluated parallel iterator.
///
/// Implementors describe how to stream the items of one shard (`feed`);
/// every adapter wraps `feed`, and every terminal fans shards out across
/// the thread budget with [`run_parts`].
pub trait ParallelIterator: Sized + Send + Sync {
    /// The element type.
    type Item: Send;

    /// Approximate total length, used to size the shard count.
    fn est_len(&self) -> usize;

    /// Streams shard `part` of `parts` into `sink`, serially.
    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(Self::Item));

    // ---- adapters -------------------------------------------------------

    /// Maps each item through `f`.
    fn map<U: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Keeps items satisfying `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, pred }
    }

    /// Maps and filters in one pass.
    fn filter_map<U: Send, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<U> + Send + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Maps each item to a serial iterator and flattens.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Copies referenced items.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    // ---- terminals ------------------------------------------------------

    /// Runs `f` on every item, in parallel across shards.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| self.feed(part, parts, &mut |item| f(item)));
    }

    /// Collects into `C`, preserving source order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_parts(self.collect_parts())
    }

    /// Reduces with an identity and an associative operator.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| {
            let mut acc = identity();
            self.feed(part, parts, &mut |item| {
                let prev = std::mem::replace(&mut acc, identity());
                acc = op(prev, item);
            });
            acc
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        self.collect_parts()
            .into_iter()
            .map(|v| v.into_iter().sum::<S>())
            .sum()
    }

    /// The largest item, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| {
            let mut best: Option<Self::Item> = None;
            self.feed(part, parts, &mut |item| {
                if best.as_ref().is_none_or(|b| item > *b) {
                    best = Some(item);
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .max()
    }

    /// The smallest item, if any.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| {
            let mut best: Option<Self::Item> = None;
            self.feed(part, parts, &mut |item| {
                if best.as_ref().is_none_or(|b| item < *b) {
                    best = Some(item);
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .min()
    }

    /// Number of items.
    fn count(self) -> usize {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| {
            let mut n = 0usize;
            self.feed(part, parts, &mut |_| n += 1);
            n
        })
        .into_iter()
        .sum()
    }

    /// First `Some` produced by `f`, from any shard (shards are fully
    /// evaluated; there is no mid-shard cancellation in the shim).
    fn find_map_any<U: Send, F>(self, f: F) -> Option<U>
    where
        F: Fn(Self::Item) -> Option<U> + Send + Sync,
    {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| {
            let mut found = None;
            self.feed(part, parts, &mut |item| {
                if found.is_none() {
                    found = f(item);
                }
            });
            found
        })
        .into_iter()
        .flatten()
        .next()
    }

    /// True if any item satisfies `pred`.
    fn any<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Send + Sync,
    {
        self.find_map_any(|item| pred(item).then_some(())).is_some()
    }

    /// True if all items satisfy `pred`.
    fn all<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Send + Sync,
    {
        !self.any(|item| !pred(item))
    }

    /// Splits items by `pred` into two collections, preserving order.
    fn partition<A, B, P>(self, pred: P) -> (A, B)
    where
        A: FromParallelIterator<Self::Item>,
        B: FromParallelIterator<Self::Item>,
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        let parts = parts_for(self.est_len());
        let pairs = run_parts(parts, |part| {
            let mut yes = Vec::new();
            let mut no = Vec::new();
            self.feed(part, parts, &mut |item| {
                if pred(&item) {
                    yes.push(item);
                } else {
                    no.push(item);
                }
            });
            (yes, no)
        });
        let (yes, no): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        (A::from_parts(yes), B::from_parts(no))
    }

    /// Evaluates all shards into per-shard vectors, in shard order.
    fn collect_parts(&self) -> Vec<Vec<Self::Item>> {
        let parts = parts_for(self.est_len());
        run_parts(parts, |part| {
            let mut out = Vec::new();
            self.feed(part, parts, &mut |item| out.push(item));
            out
        })
    }
}

/// Collections buildable from ordered per-shard vectors.
pub trait FromParallelIterator<I>: Sized {
    /// Concatenates shard outputs (shards arrive in source order).
    fn from_parts(parts: Vec<Vec<I>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_parts(parts: Vec<Vec<T>>) -> Self {
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

impl<'a, T: 'a + Copy + Send + Sync> FromParallelIterator<&'a T> for Vec<T> {
    fn from_parts(parts: Vec<Vec<&'a T>>) -> Self {
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p.into_iter().copied());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U;

    fn est_len(&self) -> usize {
        self.base.est_len()
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(U)) {
        self.base
            .feed(part, parts, &mut |item| sink((self.f)(item)));
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;

    fn est_len(&self) -> usize {
        self.base.est_len()
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(P::Item)) {
        self.base.feed(part, parts, &mut |item| {
            if (self.pred)(&item) {
                sink(item);
            }
        });
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> Option<U> + Send + Sync,
{
    type Item = U;

    fn est_len(&self) -> usize {
        self.base.est_len()
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(U)) {
        self.base.feed(part, parts, &mut |item| {
            if let Some(u) = (self.f)(item) {
                sink(u);
            }
        });
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U::Item;

    fn est_len(&self) -> usize {
        self.base.est_len()
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(U::Item)) {
        self.base.feed(part, parts, &mut |item| {
            for sub in (self.f)(item) {
                sink(sub);
            }
        });
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: 'a + Copy + Send + Sync,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn est_len(&self) -> usize {
        self.base.est_len()
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(T)) {
        self.base.feed(part, parts, &mut |item| sink(*item));
    }
}

// ---------------------------------------------------------------------------
// Sources: slices, ranges
// ---------------------------------------------------------------------------

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn est_len(&self) -> usize {
        self.slice.len()
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(&'a T)) {
        let (lo, hi) = part_bounds(self.slice.len(), part, parts);
        for item in &self.slice[lo..hi] {
            sink(item);
        }
    }
}

/// Parallel iterator over fixed-size chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn est_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut(&'a [T])) {
        let chunks = self.est_len();
        let (lo, hi) = part_bounds(chunks, part, parts);
        for c in lo..hi {
            let start = c * self.size;
            let end = ((c + 1) * self.size).min(self.slice.len());
            sink(&self.slice[start..end]);
        }
    }
}

/// Exclusive mutable parallel iterator over a slice. Supports only
/// [`ParSliceMut::for_each`] (the workspace's sole `par_iter_mut` use).
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Runs `f` on every element, in parallel across shards.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Send + Sync,
    {
        let parts = parts_for(self.slice.len());
        if parts <= 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let len = self.slice.len();
        let mut shards = Vec::with_capacity(parts);
        let mut rest = self.slice;
        let mut taken = 0;
        for part in 0..parts {
            let (_, hi) = part_bounds(len, part, parts);
            let (shard, tail) = rest.split_at_mut(hi - taken);
            taken = hi;
            rest = tail;
            shards.push(shard);
        }
        let handler = current_handler();
        std::thread::scope(|scope| {
            for (part, shard) in shards.into_iter().enumerate() {
                let f = &f;
                let handler = handler.clone();
                scope.spawn(move || {
                    if let Some(h) = &handler {
                        h(part);
                    }
                    for item in shard {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Extension methods putting slices into the parallel world.
pub trait ParallelSlice<T: Sync> {
    /// Parallel borrowing iterator.
    fn par_iter(&self) -> ParSlice<'_, T>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
}

/// Extension methods for mutable slice parallelism.
pub trait ParallelSliceMut<T: Send> {
    /// Exclusive parallel iterator.
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
    /// Unstable sort (serial in the shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key (serial in the shim).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    start: T,
    end: T,
}

/// Conversion into a parallel iterator, mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;

            fn est_len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }

            fn feed(&self, part: usize, parts: usize, sink: &mut dyn FnMut($t)) {
                let len = self.est_len();
                let (lo, hi) = part_bounds(len, part, parts);
                for v in (self.start + lo as $t)..(self.start + hi as $t) {
                    sink(v);
                }
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { start: self.start, end: self.end.max(self.start) }
            }
        }
    )*};
}

impl_par_range!(u8, u16, u32, u64, usize);

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParSlice<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// The names parallel code imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_filter_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let out: Vec<u64> = v
            .par_iter()
            .map(|&x| x as u64 * 2)
            .filter(|&x| x % 3 != 0)
            .collect();
        let want: Vec<u64> = (0..1000u64).map(|x| x * 2).filter(|x| x % 3 != 0).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn range_sum_and_count() {
        let total: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
        assert_eq!((0..77u32).into_par_iter().count(), 77);
    }

    #[test]
    fn for_each_visits_everything_in_parallel() {
        let acc = AtomicU64::new(0);
        (1..101u64).into_par_iter().for_each(|x| {
            acc.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn reduce_max_min_partition() {
        let v: Vec<u32> = vec![5, 3, 9, 1, 7];
        assert_eq!(v.par_iter().copied().max(), Some(9));
        assert_eq!(v.par_iter().copied().min(), Some(1));
        let r = v.par_iter().copied().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 25);
        let (small, big): (Vec<u32>, Vec<u32>) = v.par_iter().partition(|&&x| x < 5);
        assert_eq!(small, vec![3, 1]);
        assert_eq!(big, vec![5, 9, 7]);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let v = [1u32, 2, 3];
        let out: Vec<u32> = v.par_iter().flat_map_iter(|&x| 0..x).collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn par_chunks_and_reduce() {
        let v: Vec<u64> = (0..103).collect();
        let total = v
            .par_chunks(10)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 102 * 103 / 2);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let mut v: Vec<u32> = (0..257).collect();
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn par_sorts() {
        let mut v = vec![5, 1, 4, 2, 3];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        let mut w = vec![(1, 'b'), (0, 'a'), (2, 'c')];
        w.par_sort_unstable_by_key(|&(k, _)| std::cmp::Reverse(k));
        assert_eq!(w, vec![(2, 'c'), (1, 'b'), (0, 'a')]);
    }

    #[test]
    fn find_map_any_and_all() {
        let v: Vec<u32> = (0..1000).collect();
        let hit = v.par_iter().find_map_any(|&x| (x == 617).then_some(x * 2));
        assert_eq!(hit, Some(1234));
        assert!(v.par_iter().all(|&x| x < 1000));
        assert!(v.par_iter().any(|&x| x == 999));
        assert!(!v.par_iter().any(|&x| x > 1000));
    }

    #[test]
    fn install_bounds_budget_and_nested_calls_divide() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        // Nested parallelism inside a shard sees a reduced budget.
        let nested_max = pool.install(|| {
            (0..3u32)
                .into_par_iter()
                .map(|_| crate::current_num_threads())
                .max()
                .unwrap()
        });
        assert!(nested_max <= 3, "nested budget {nested_max}");
    }

    #[test]
    fn empty_sources() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(
            v.par_iter().copied().collect::<Vec<u32>>(),
            Vec::<u32>::new()
        );
        assert_eq!(v.par_iter().copied().max(), None);
        assert_eq!((5..5u32).into_par_iter().count(), 0);
    }

    #[test]
    fn start_handler_runs_on_spawned_workers_only() {
        use std::collections::BTreeSet;
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let sink = Arc::clone(&seen);
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .start_handler(move |i| {
                sink.lock().unwrap().insert(i);
            })
            .build()
            .unwrap();
        pool.install(|| {
            (0..64u32).into_par_iter().for_each(|_| {});
        });
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty(), "spawned workers ran the handler");
        assert!(!seen.contains(&0), "part 0 (the caller) is never handled");
        assert!(
            seen.iter().all(|&i| i < 4),
            "indices stay below the pool size"
        );
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            (0..64u32).into_par_iter().for_each(|x| {
                if x == 63 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }
}
