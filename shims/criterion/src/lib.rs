//! Minimal stand-in for `criterion`: just enough to compile and run this
//! workspace's `harness = false` benches. Each `bench_function` performs
//! one warm-up call, then times repeated calls for a fixed wall-clock
//! budget and prints the mean iteration time. There is no statistical
//! analysis, outlier detection, or HTML report.

use std::time::{Duration, Instant};

/// Wall-clock measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Iteration cap per benchmark, so very fast bodies terminate promptly.
const MAX_ITERS: u64 = 10_000;

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion API parity; the shim's fixed wall-clock
    /// budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion API parity; ignored (fixed budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for criterion API parity; ignored (single warm-up call).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f`'s `b.iter(...)` body and prints the mean per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            let mean = b.elapsed / b.iters as u32;
            println!("  {}/{id}: {mean:?}/iter ({} iters)", self.name, b.iters);
        }
        self
    }

    /// Ends the group (no-op beyond symmetry with criterion).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly under the measurement budget, timing it.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            std::hint::black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// Re-export of [`std::hint::black_box`] for criterion API parity.
pub use std::hint::black_box;

/// Declares a benchmark entry point: a function invoking each target
/// with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
