//! Minimal stand-in for `crossbeam`: the MPMC channels and `CachePadded`
//! the workspace uses, implemented on `std::sync` primitives.

pub mod channel;
pub mod utils;
