//! `CachePadded`: aligns a value to a cache line to prevent false sharing.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) one cache line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self(value)
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(c.into_inner(), 7);
    }
}
