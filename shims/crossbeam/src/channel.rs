//! MPMC channels with the crossbeam-channel API surface the workspace
//! uses: `bounded`/`unbounded` construction, cloneable senders *and*
//! receivers, non-blocking `try_send`/`try_recv`, timed `recv_timeout`,
//! and disconnect-on-last-drop semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Creates a channel with unbounded buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

/// Creates a channel holding at most `cap` in-flight messages. `cap` is
/// clamped to at least 1 (the rendezvous case is not supported).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; cloneable for multi-producer use.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable for multi-consumer use.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The channel is disconnected (no receivers); returns the unsent value.
pub struct SendError<T>(pub T);

/// Why a `try_send` could not enqueue.
pub enum TrySendError<T> {
    /// The channel is at capacity; returns the unsent value.
    Full(T),
    /// All receivers are gone; returns the unsent value.
    Disconnected(T),
}

/// The channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a `try_recv` produced nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Nothing queued and all senders are gone.
    Disconnected,
}

/// Why a `recv_timeout` produced nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// Nothing queued and all senders are gone.
    Disconnected,
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued (or every receiver is gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self
                        .shared
                        .not_full
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueues without blocking; `Full` if at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = inner.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        inner.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.lock().cap
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives (or every sender is gone and the
    /// queue has drained).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        if let Some(v) = inner.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// As [`Receiver::recv`] with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = g;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn drop_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).map(|_| ()).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(t.join().unwrap());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u32>(1);
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = unbounded::<usize>();
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
    }
}
