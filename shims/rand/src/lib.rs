//! Minimal stand-in for `rand` 0.8: the `Rng`/`SeedableRng` traits and a
//! `SmallRng` (xoshiro256++, SplitMix64-seeded) sufficient for this
//! workspace's seeded graph generators and examples.
//!
//! The generator is *not* stream-compatible with the real `rand::SmallRng`;
//! seeded sequences are deterministic per seed but differ from upstream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling interface, in the spirit of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        let mut this = self;
        range.sample_from(&mut this)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers uniform, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        let mut this = self;
        T::sample_standard(&mut this)
    }

    /// A fair-ish coin with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a generator's standard distribution.
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by Lemire-style widening multiply
/// (modulo bias is negligible at u64 width; acceptable for a shim).
fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(below(rng, span) as i64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&w));
            let s: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces seen: {seen:?}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
