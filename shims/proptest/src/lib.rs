//! Minimal stand-in for `proptest`: random-input property testing with
//! the `proptest!` macro, composable strategies, and `prop_assert*`
//! macros. Failing inputs are reported with the case's seed but are
//! **not shrunk** — a deliberate simplification for a vendored shim.

/// Strategy combinators: how arbitrary values are described and sampled.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The runner: configuration, RNG, and case-loop machinery.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt;

    /// Deterministic generator behind all sampling (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
        /// The input was rejected: the runner resamples a replacement so
        /// the configured case count is still met in full (a bounded
        /// reject budget guards against strategies that reject forever).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            Self::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject<S: Into<String>>(reason: S) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl fmt::Debug for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Fail(m) => write!(f, "Fail: {m}"),
                Self::Reject(m) => write!(f, "Reject: {m}"),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(self, f)
        }
    }

    /// A property falsified after some number of passing cases.
    pub struct TestError {
        /// Explanation from the failing case.
        pub message: String,
        /// Per-case RNG seed; rerunning with it reproduces the input.
        pub seed: u64,
        /// Index of the failing case.
        pub case: u32,
    }

    impl fmt::Debug for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "property failed at case {} (seed {:#x}): {}",
                self.case, self.seed, self.message
            )
        }
    }

    /// Drives a strategy and a property through `config.cases` cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given config.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Checks `test` against freshly sampled inputs; stops at the
        /// first failure. Deterministic: attempt `i` always uses a seed
        /// derived from `i`, so with no rejections case `i` samples the
        /// same input it always has.
        ///
        /// Rejected inputs do **not** consume the case budget — the
        /// runner draws a replacement from the next attempt seed until
        /// `config.cases` cases have actually passed. A strategy that
        /// rejects more than 16× the case budget is reported as an error
        /// rather than silently under-running the property.
        pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
        where
            S: Strategy,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            let max_rejects = self.config.cases.saturating_mul(16).max(16);
            let mut passed: u32 = 0;
            let mut rejects: u32 = 0;
            let mut attempt: u64 = 0;
            while passed < self.config.cases {
                let seed = 0x5EED_0000u64 ^ attempt.wrapping_mul(0x2545_F491_4F6C_DD1D);
                attempt += 1;
                let mut rng = TestRng::new(seed);
                let value = strategy.sample(&mut rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(reason)) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            return Err(TestError {
                                message: format!(
                                    "strategy rejected {rejects} inputs before {} cases \
                                     passed (last rejection: {reason})",
                                    self.config.cases
                                ),
                                seed,
                                case: passed,
                            });
                        }
                    }
                    Err(TestCaseError::Fail(message)) => {
                        return Err(TestError {
                            message,
                            seed,
                            case: passed,
                        })
                    }
                }
            }
            Ok(())
        }
    }
}

/// The names property tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case (early-returns `Err`) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\nassertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy) { body }`
/// becomes a `#[test]` running the body against sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let outcome = runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(e) = outcome {
                panic!("{:?}", e);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..20).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n as u32, 0..50)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_elements_in_range((n, items) in arb_pair()) {
            for &x in &items {
                prop_assert!((x as usize) < n, "{} out of range {}", x, n);
            }
            prop_assert!(items.len() < 50);
        }

        #[test]
        fn oneof_and_map((tag, v) in (prop_oneof![Just(0u32), Just(1u32)], (0u32..10).prop_map(|x| x * 2))) {
            prop_assert!(tag <= 1);
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 19);
        }
    }

    #[test]
    fn failing_property_reports_failure() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(32));
        let out = runner.run(&(0u32..100), |x| {
            if x < 1000 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
        assert!(out.is_err());
    }

    #[test]
    fn rejected_inputs_do_not_consume_the_case_budget() {
        use std::cell::Cell;
        let executed = Cell::new(0u32);
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(64));
        let out = runner.run(&(0u32..100), |x| {
            // Reject roughly half the inputs; the runner must still run
            // 64 *passing* cases, not 64 attempts.
            if x % 2 == 0 {
                return Err(TestCaseError::reject("even input"));
            }
            executed.set(executed.get() + 1);
            Ok(())
        });
        assert!(out.is_ok());
        assert_eq!(executed.get(), 64);
    }

    #[test]
    fn always_rejecting_strategy_errors_instead_of_passing_vacuously() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        let out = runner.run(&(0u32..100), |_x| Err(TestCaseError::reject("never")));
        let err = out.unwrap_err();
        assert!(format!("{err:?}").contains("rejected"), "{err:?}");
    }

    #[test]
    fn question_mark_and_fail_compose() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(8));
        let out = runner.run(&(0u32..100), |_x| {
            let r: Result<(), String> = Ok(());
            r.map_err(TestCaseError::fail)?;
            Ok(())
        });
        assert!(out.is_ok());
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000).prop_map(|x| x + 1);
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        let xs: Vec<u64> = (0..16).map(|_| s.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| s.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
