//! Minimal stand-in for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! built on `std::sync`. Lock acquisition never returns a
//! `Result` — a poisoned std lock (a panic while held) is recovered into
//! its inner value, matching parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
